"""TPC-H queries on the DPU engine vs the Xeon baseline (paper §5.3,
Figure 16).

Each query is a hand-composed physical plan over the engine's
operators — the granularity at which the paper's commercial database
offloads plans to the DPU. Plans follow the §5.3 playbook: scans with
FILT acceleration, broadcast-DMEM lookups for the dense foreign-key
joins, hardware/software partitioning for grouping, and a merge or
top-k tail.

Money stays in integer cents and discounts/taxes in integer percent
(the dpCore has no FPU), so both platforms compute bit-identical
aggregates up to the final division.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ...baseline.dbms import DbmsCostModel, ScanShape
from ...baseline.xeon import XeonModel
from ...core.dpu import DPU
from ...workloads.tpch import (
    SEGMENTS,
    SHIP_MODES,
    TpchData,
    date_code,
    part_type_is_promo,
)
from .aggregate import (
    AggSpec,
    GroupKey,
    RowFilter,
    dpu_groupby,
    xeon_groupby,
)
from .engine import DpuOpResult, XeonOpResult
from .expr import Between, Eq, Ge, InSet, Le
from .filter import dpu_filter, dpu_scan_project, xeon_filter
from .join import (
    BITMAP_PROBE_CYCLES_PER_ROW,
    LOOKUP_CYCLES_PER_ROW,
    bitmap_filter,
    broadcast_array,
    key_bitmap,
)
from .table import DpuTable, Table

__all__ = [
    "TPCH_QUERIES",
    "TpchQuery",
    "load_tpch_on_dpu",
    "q1_plan",
    "run_query",
]


@dataclass(frozen=True)
class TpchQuery:
    name: str
    dpu_fn: Callable
    xeon_fn: Callable
    paper_gain_hint: float  # approximate bar height in Figure 16


def load_tpch_on_dpu(dpu: DPU, data: TpchData) -> Dict[str, DpuTable]:
    """Copy every generated table into DPU DDR."""
    tables = {}
    for name, columns in data.tables.items():
        tables[name] = Table(name, dict(columns)).to_dpu(dpu)
    return tables


def _combine_dpu(results: List[DpuOpResult], value) -> DpuOpResult:
    return DpuOpResult(
        value=value,
        cycles=sum(result.cycles for result in results),
        config=results[0].config,
        bytes_streamed=sum(result.bytes_streamed for result in results),
    )


def _combine_xeon(results: List[XeonOpResult], value) -> XeonOpResult:
    return XeonOpResult(
        value=value,
        seconds=sum(result.seconds for result in results),
        bytes_streamed=sum(result.bytes_streamed for result in results),
    )


# -- Q1: pricing summary report ---------------------------------------------

_Q1_CUTOFF = date_code(1998, 12, 1) - 90


def _q1_aggs() -> List[AggSpec]:
    disc_price = AggSpec(
        "sum",
        expr=lambda c: c["l_extendedprice"].astype(np.int64)
        * (100 - c["l_discount"]),
        expr_columns=("l_extendedprice", "l_discount"),
        expr_cycles_per_row=2.0,
    )
    charge = AggSpec(
        "sum",
        expr=lambda c: c["l_extendedprice"].astype(np.int64)
        * (100 - c["l_discount"])
        * (100 + c["l_tax"]),
        expr_columns=("l_extendedprice", "l_discount", "l_tax"),
        expr_cycles_per_row=4.0,
    )
    return [
        AggSpec("sum", "l_quantity"),
        AggSpec("sum", "l_extendedprice"),
        disc_price,
        charge,
        AggSpec("sum", "l_discount"),
        AggSpec("count"),
    ]


_Q1_KEY = GroupKey(
    fn=lambda c: c["l_returnflag"].astype(np.int64) * 2
    + c["l_linestatus"].astype(np.int64),
    columns=("l_returnflag", "l_linestatus"),
    cycles_per_row=1.0,
    name="rf_ls",
)


def q1_plan() -> Tuple[GroupKey, List[AggSpec], Le]:
    """Q1's physical plan pieces (group key, aggregates, row filter).

    Shared between the single-DPU query and the cluster job
    (:func:`repro.cluster.scaleout.cluster_tpch_q1`), which runs the
    same plan per shard and merges the partials.
    """
    return _Q1_KEY, _q1_aggs(), Le("l_shipdate", _Q1_CUTOFF)


def q1_dpu(dpu: DPU, tables: Dict[str, DpuTable], data: TpchData) -> DpuOpResult:
    key, aggs, row_filter = q1_plan()
    result = dpu_groupby(
        dpu,
        tables["lineitem"],
        key,
        aggs,
        row_filter=row_filter,
    )
    return result


def q1_xeon(model: XeonModel, data: TpchData) -> XeonOpResult:
    table = Table("lineitem", data.tables["lineitem"])
    functional = xeon_groupby(
        model, table, _Q1_KEY, _q1_aggs(), row_filter=Le("l_shipdate", _Q1_CUTOFF)
    )
    dbms = DbmsCostModel(model)
    rows = table.num_rows
    nbytes = table.nbytes(
        ["l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
         "l_extendedprice", "l_discount", "l_tax"]
    )
    seconds = dbms.plan_seconds([
        ScanShape(rows=rows, nbytes=nbytes, filter_terms=1, aggregates=6,
                  groupby=True),
    ])
    return XeonOpResult(value=functional.value, seconds=seconds,
                        bytes_streamed=nbytes)


# -- Q6: forecasting revenue change -------------------------------------------

_Q6_PRED = (
    Between("l_shipdate", date_code(1994, 1, 1), date_code(1995, 1, 1) - 1)
    & Between("l_discount", 5, 7)
    & Le("l_quantity", 23)
)
_Q6_AGG = AggSpec(
    "sum",
    expr=lambda c: c["l_extendedprice"].astype(np.int64) * c["l_discount"],
    expr_columns=("l_extendedprice", "l_discount"),
    expr_cycles_per_row=2.0,
)
_Q6_KEY = GroupKey(
    fn=lambda c: np.zeros(len(c["l_extendedprice"]), dtype=np.int64),
    columns=("l_extendedprice",),
    cycles_per_row=0.0,
    name="const",
)


def q6_dpu(dpu: DPU, tables: Dict[str, DpuTable], data: TpchData) -> DpuOpResult:
    return dpu_groupby(
        dpu, tables["lineitem"], _Q6_KEY, [_Q6_AGG], row_filter=_Q6_PRED,
        ndv_hint=1,
    )


def q6_xeon(model: XeonModel, data: TpchData) -> XeonOpResult:
    table = Table("lineitem", data.tables["lineitem"])
    functional = xeon_groupby(
        model, table, _Q6_KEY, [_Q6_AGG], row_filter=_Q6_PRED, ndv_hint=1
    )
    dbms = DbmsCostModel(model)
    nbytes = table.nbytes(
        ["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"]
    )
    seconds = dbms.plan_seconds([
        ScanShape(rows=table.num_rows, nbytes=nbytes, filter_terms=3,
                  aggregates=1),
    ])
    return XeonOpResult(value=functional.value, seconds=seconds,
                        bytes_streamed=nbytes)


# -- Q3: shipping priority (customer x orders x lineitem, top 10) -------------

_Q3_DATE = date_code(1995, 3, 15)
_Q3_SEGMENT = SEGMENTS.index("BUILDING")
_REVENUE = AggSpec(
    "sum",
    expr=lambda c: c["l_extendedprice"].astype(np.int64)
    * (100 - c["l_discount"]),
    expr_columns=("l_extendedprice", "l_discount"),
    expr_cycles_per_row=2.0,
)


def q3_dpu(dpu: DPU, tables: Dict[str, DpuTable], data: TpchData) -> DpuOpResult:
    steps: List[DpuOpResult] = []
    # 1. customers in the BUILDING segment -> custkey bitmap.
    cust = dpu_filter(dpu, tables["customer"], Eq("c_mktsegment", _Q3_SEGMENT))
    steps.append(cust)
    cust_bitmap = key_bitmap(
        np.nonzero(cust.value)[0], data.num_rows("customer")
    )
    cust_bc, _view = broadcast_array(dpu, "cust_bitmap", cust_bitmap)
    # 2. open orders of those customers -> orderkey bitmap.
    orders = dpu_filter(
        dpu,
        tables["orders"],
        bitmap_filter(
            "o_custkey", cust_bitmap, extra=Le("o_orderdate", _Q3_DATE - 1)
        ),
        broadcasts=(cust_bc,),
    )
    steps.append(orders)
    order_bitmap = key_bitmap(
        np.nonzero(orders.value)[0], data.num_rows("orders")
    )
    order_bc, _view = broadcast_array(dpu, "order_bitmap", order_bitmap)
    # 3. revenue per order over qualifying lineitems.
    selected_orders = int(orders.value.sum())
    grouped = dpu_groupby(
        dpu,
        tables["lineitem"],
        "l_orderkey",
        [_REVENUE],
        row_filter=bitmap_filter(
            "l_orderkey", order_bitmap, extra=Ge("l_shipdate", _Q3_DATE + 1)
        ),
        ndv_hint=max(1, selected_orders),
        broadcasts=(order_bc,),
    )
    steps.append(grouped)
    # 4. top 10 by revenue; attach order date/priority (tiny tail).
    orderdate = data.table("orders")["o_orderdate"]
    shipprio = data.table("orders")["o_shippriority"]
    ranked = sorted(
        grouped.value.items(), key=lambda item: (-item[1][0], item[0])
    )[:10]
    rows = [
        (int(orderkey), slots[0], int(orderdate[orderkey]),
         int(shipprio[orderkey]))
        for orderkey, slots in ranked
    ]
    return _combine_dpu(steps, rows)


def q3_xeon(model: XeonModel, data: TpchData) -> XeonOpResult:
    steps: List[XeonOpResult] = []
    customer = Table("customer", data.tables["customer"])
    orders = Table("orders", data.tables["orders"])
    lineitem = Table("lineitem", data.tables["lineitem"])
    cust = xeon_filter(model, customer, Eq("c_mktsegment", _Q3_SEGMENT))
    steps.append(cust)
    cust_bitmap = key_bitmap(np.nonzero(cust.value)[0], customer.num_rows)
    sel_orders = xeon_filter(
        model,
        orders,
        bitmap_filter(
            "o_custkey", cust_bitmap, extra=Le("o_orderdate", _Q3_DATE - 1)
        ),
    )
    steps.append(sel_orders)
    order_bitmap = key_bitmap(np.nonzero(sel_orders.value)[0], orders.num_rows)
    grouped = xeon_groupby(
        model,
        lineitem,
        "l_orderkey",
        [_REVENUE],
        row_filter=bitmap_filter(
            "l_orderkey", order_bitmap, extra=Ge("l_shipdate", _Q3_DATE + 1)
        ),
        ndv_hint=max(1, int(sel_orders.value.sum())),
    )
    steps.append(grouped)
    orderdate = data.table("orders")["o_orderdate"]
    shipprio = data.table("orders")["o_shippriority"]
    ranked = sorted(
        grouped.value.items(), key=lambda item: (-item[1][0], item[0])
    )[:10]
    rows = [
        (int(orderkey), slots[0], int(orderdate[orderkey]),
         int(shipprio[orderkey]))
        for orderkey, slots in ranked
    ]
    dbms = DbmsCostModel(model)
    seconds = dbms.plan_seconds([
        ScanShape(rows=customer.num_rows,
                  nbytes=customer.nbytes(["c_mktsegment"]), filter_terms=1),
        ScanShape(rows=orders.num_rows,
                  nbytes=orders.nbytes(["o_custkey", "o_orderdate"]),
                  filter_terms=1, join_probes=1),
        ScanShape(rows=lineitem.num_rows,
                  nbytes=lineitem.nbytes(
                      ["l_orderkey", "l_shipdate", "l_extendedprice",
                       "l_discount"]),
                  filter_terms=1, aggregates=1, groupby=True, join_probes=1),
    ])
    return XeonOpResult(value=rows, seconds=seconds,
                        bytes_streamed=sum(s.bytes_streamed for s in steps))


# -- Q5: local supplier volume (ASIA) ------------------------------------------

_Q5_DATE_LO = date_code(1994, 1, 1)
_Q5_DATE_HI = date_code(1995, 1, 1) - 1
_NO_NATION = 127  # sentinel in the order->nation projection


def _q5_asian_nations(data: TpchData) -> np.ndarray:
    nation = data.table("nation")
    asia = 2  # REGIONS.index("ASIA")
    return np.nonzero(nation["n_regionkey"] == asia)[0]


def q5_dpu(dpu: DPU, tables: Dict[str, DpuTable], data: TpchData) -> DpuOpResult:
    steps: List[DpuOpResult] = []
    asian = set(_q5_asian_nations(data).tolist())
    cust_nation = data.table("customer")["c_nationkey"].astype(np.int8)
    cust_bc, cust_view = broadcast_array(dpu, "cust_nation", cust_nation)
    asian_mask = np.isin(np.arange(25), list(asian))

    # 1. orders scan: project each order's customer-nation if the
    # order qualifies (date range, Asian customer), else sentinel.
    def order_nation_project(columns):
        nations = cust_view[columns["o_custkey"].astype(np.int64)]
        dates = columns["o_orderdate"].astype(np.int64)
        ok = (
            (dates >= _Q5_DATE_LO)
            & (dates <= _Q5_DATE_HI)
            & asian_mask[nations.astype(np.int64)]
        )
        return np.where(ok, nations, _NO_NATION).astype(np.int8)

    order_filter = RowFilter(
        mask_fn=lambda c: np.ones(len(c["o_custkey"]), dtype=bool),
        columns=("o_custkey", "o_orderdate"),
        dpu_cycles_per_row=LOOKUP_CYCLES_PER_ROW + 2 * 1.6 + 1.0,
        xeon_ops_per_row=5.0,
    )
    order_nation = dpu_scan_project(
        dpu,
        tables["orders"],
        order_filter,
        order_nation_project,
        np.int8,
        broadcasts=(cust_bc,),
    )
    steps.append(order_nation)

    # 2. lineitem scan: group revenue by the order's nation where the
    # supplier shares it.
    order_nation_bc, order_nation_view = broadcast_array(
        dpu, "order_nation", order_nation.value
    )
    supp_nation = data.table("supplier")["s_nationkey"].astype(np.int8)
    supp_bc, supp_view = broadcast_array(dpu, "supp_nation", supp_nation)

    def line_mask(columns):
        order_nations = order_nation_view[
            columns["l_orderkey"].astype(np.int64)
        ]
        supplier_nations = supp_view[columns["l_suppkey"].astype(np.int64)]
        return (order_nations != _NO_NATION) & (
            order_nations == supplier_nations
        )

    line_filter = RowFilter(
        mask_fn=line_mask,
        columns=("l_orderkey", "l_suppkey"),
        dpu_cycles_per_row=2 * LOOKUP_CYCLES_PER_ROW + 2.0,
        xeon_ops_per_row=8.0,
    )
    nation_key = GroupKey(
        fn=lambda c: order_nation_view[
            c["l_orderkey"].astype(np.int64)
        ].astype(np.int64),
        columns=("l_orderkey",),
        cycles_per_row=LOOKUP_CYCLES_PER_ROW,
        name="order_nation",
    )
    grouped = dpu_groupby(
        dpu,
        tables["lineitem"],
        nation_key,
        [_REVENUE],
        row_filter=line_filter,
        ndv_hint=25,
        broadcasts=(order_nation_bc, supp_bc),
    )
    steps.append(grouped)
    revenue = sorted(
        ((int(nation), slots[0]) for nation, slots in grouped.value.items()
         if nation != _NO_NATION),
        key=lambda item: -item[1],
    )
    return _combine_dpu(steps, revenue)


def q5_xeon(model: XeonModel, data: TpchData) -> XeonOpResult:
    steps: List[XeonOpResult] = []
    asian = set(_q5_asian_nations(data).tolist())
    asian_mask = np.isin(np.arange(25), list(asian))
    cust_nation = data.table("customer")["c_nationkey"].astype(np.int8)
    orders = data.table("orders")
    nations = cust_nation[orders["o_custkey"].astype(np.int64)]
    dates = orders["o_orderdate"].astype(np.int64)
    ok = (
        (dates >= _Q5_DATE_LO)
        & (dates <= _Q5_DATE_HI)
        & asian_mask[nations.astype(np.int64)]
    )
    order_nation = np.where(ok, nations, _NO_NATION).astype(np.int8)
    orders_table = Table("orders", data.tables["orders"])
    steps.append(
        XeonOpResult(
            value=order_nation,
            seconds=model.roofline_seconds(
                instructions=len(order_nation) * 5.0,
                nbytes=orders_table.nbytes(["o_custkey", "o_orderdate"])
                + order_nation.nbytes,
            ),
            bytes_streamed=orders_table.nbytes(["o_custkey", "o_orderdate"]),
        )
    )
    supp_nation = data.table("supplier")["s_nationkey"].astype(np.int8)

    def line_mask(columns):
        order_nations = order_nation[columns["l_orderkey"].astype(np.int64)]
        supplier_nations = supp_nation[columns["l_suppkey"].astype(np.int64)]
        return (order_nations != _NO_NATION) & (
            order_nations == supplier_nations
        )

    line_filter = RowFilter(
        mask_fn=line_mask,
        columns=("l_orderkey", "l_suppkey"),
        dpu_cycles_per_row=2 * LOOKUP_CYCLES_PER_ROW + 2.0,
        xeon_ops_per_row=8.0,
    )
    nation_key = GroupKey(
        fn=lambda c: order_nation[c["l_orderkey"].astype(np.int64)].astype(
            np.int64
        ),
        columns=("l_orderkey",),
        cycles_per_row=LOOKUP_CYCLES_PER_ROW,
        name="order_nation",
    )
    lineitem = Table("lineitem", data.tables["lineitem"])
    grouped = xeon_groupby(
        model, lineitem, nation_key, [_REVENUE], row_filter=line_filter,
        ndv_hint=25,
    )
    steps.append(grouped)
    revenue = sorted(
        ((int(nation), slots[0]) for nation, slots in grouped.value.items()
         if nation != _NO_NATION),
        key=lambda item: -item[1],
    )
    dbms = DbmsCostModel(model)
    seconds = dbms.plan_seconds([
        ScanShape(rows=orders_table.num_rows,
                  nbytes=orders_table.nbytes(["o_custkey", "o_orderdate"]),
                  filter_terms=2, join_probes=1),
        ScanShape(rows=lineitem.num_rows,
                  nbytes=lineitem.nbytes(
                      ["l_orderkey", "l_suppkey", "l_extendedprice",
                       "l_discount"]),
                  filter_terms=1, aggregates=1, groupby=True, join_probes=2),
    ])
    return XeonOpResult(value=revenue, seconds=seconds,
                        bytes_streamed=sum(s.bytes_streamed for s in steps))


# -- Q12: shipping modes and delivery priority ----------------------------------

_Q12_MODES = (SHIP_MODES.index("MAIL"), SHIP_MODES.index("SHIP"))
_Q12_LO = date_code(1994, 1, 1)
_Q12_HI = date_code(1995, 1, 1) - 1


def _q12_filter() -> RowFilter:
    def mask_fn(columns):
        return (
            np.isin(columns["l_shipmode"], _Q12_MODES)
            & (columns["l_commitdate"] < columns["l_receiptdate"])
            & (columns["l_shipdate"] < columns["l_commitdate"])
            & (columns["l_receiptdate"].astype(np.int64) >= _Q12_LO)
            & (columns["l_receiptdate"].astype(np.int64) <= _Q12_HI)
        )

    return RowFilter(
        mask_fn=mask_fn,
        columns=(
            "l_shipmode", "l_commitdate", "l_receiptdate", "l_shipdate",
        ),
        dpu_cycles_per_row=5 * 1.6,  # five FILT-able terms
        xeon_ops_per_row=2.0,
    )


def _q12_aggs(priority_view: np.ndarray) -> List[AggSpec]:
    high = AggSpec(
        "sum",
        expr=lambda c: (
            priority_view[c["l_orderkey"].astype(np.int64)] <= 1
        ).astype(np.int64),
        expr_columns=("l_orderkey",),
        expr_cycles_per_row=LOOKUP_CYCLES_PER_ROW + 1.0,
    )
    low = AggSpec(
        "sum",
        expr=lambda c: (
            priority_view[c["l_orderkey"].astype(np.int64)] > 1
        ).astype(np.int64),
        expr_columns=("l_orderkey",),
        expr_cycles_per_row=1.0,  # reuses the looked-up priority
    )
    return [high, low]


def q12_dpu(dpu: DPU, tables: Dict[str, DpuTable], data: TpchData) -> DpuOpResult:
    priority = data.table("orders")["o_orderpriority"].astype(np.int8)
    prio_bc, prio_view = broadcast_array(dpu, "order_priority", priority)
    return dpu_groupby(
        dpu,
        tables["lineitem"],
        "l_shipmode",
        _q12_aggs(prio_view),
        row_filter=_q12_filter(),
        ndv_hint=len(SHIP_MODES),
        broadcasts=(prio_bc,),
    )


def q12_xeon(model: XeonModel, data: TpchData) -> XeonOpResult:
    priority = data.table("orders")["o_orderpriority"].astype(np.int8)
    lineitem = Table("lineitem", data.tables["lineitem"])
    functional = xeon_groupby(
        model,
        lineitem,
        "l_shipmode",
        _q12_aggs(priority),
        row_filter=_q12_filter(),
        ndv_hint=len(SHIP_MODES),
    )
    dbms = DbmsCostModel(model)
    nbytes = lineitem.nbytes(
        ["l_shipmode", "l_commitdate", "l_receiptdate", "l_shipdate",
         "l_orderkey"]
    )
    seconds = dbms.plan_seconds([
        ScanShape(rows=lineitem.num_rows, nbytes=nbytes, filter_terms=5,
                  aggregates=2, groupby=True, join_probes=1),
    ])
    return XeonOpResult(value=functional.value, seconds=seconds,
                        bytes_streamed=nbytes)


# -- Q14: promotion effect ---------------------------------------------------------

_Q14_LO = date_code(1995, 9, 1)
_Q14_HI = date_code(1995, 10, 1) - 1
_Q14_PRED = Between("l_shipdate", _Q14_LO, _Q14_HI)
_Q14_KEY = GroupKey(
    fn=lambda c: np.zeros(len(c["l_partkey"]), dtype=np.int64),
    columns=("l_partkey",),
    cycles_per_row=0.0,
    name="const",
)


def _q14_aggs(promo_view: np.ndarray) -> List[AggSpec]:
    promo_revenue = AggSpec(
        "sum",
        expr=lambda c: np.where(
            promo_view[c["l_partkey"].astype(np.int64)],
            c["l_extendedprice"].astype(np.int64) * (100 - c["l_discount"]),
            0,
        ),
        expr_columns=("l_partkey", "l_extendedprice", "l_discount"),
        expr_cycles_per_row=LOOKUP_CYCLES_PER_ROW + 3.0,
    )
    total_revenue = AggSpec(
        "sum",
        expr=lambda c: c["l_extendedprice"].astype(np.int64)
        * (100 - c["l_discount"]),
        expr_columns=("l_extendedprice", "l_discount"),
        expr_cycles_per_row=2.0,
    )
    return [promo_revenue, total_revenue]


def q14_dpu(dpu: DPU, tables: Dict[str, DpuTable], data: TpchData) -> DpuOpResult:
    promo = part_type_is_promo(data.table("part")["p_type"]).astype(np.uint8)
    promo_bc, promo_view = broadcast_array(dpu, "part_promo", promo)
    result = dpu_groupby(
        dpu,
        tables["lineitem"],
        _Q14_KEY,
        _q14_aggs(promo_view),
        row_filter=_Q14_PRED,
        ndv_hint=1,
        broadcasts=(promo_bc,),
    )
    promo_rev, total_rev = result.value.get(0, [0, 0])
    ratio = 100.0 * promo_rev / total_rev if total_rev else 0.0
    return DpuOpResult(
        value=ratio,
        cycles=result.cycles,
        config=result.config,
        bytes_streamed=result.bytes_streamed,
    )


def q14_xeon(model: XeonModel, data: TpchData) -> XeonOpResult:
    promo = part_type_is_promo(data.table("part")["p_type"]).astype(np.uint8)
    lineitem = Table("lineitem", data.tables["lineitem"])
    result = xeon_groupby(
        model,
        lineitem,
        _Q14_KEY,
        _q14_aggs(promo),
        row_filter=_Q14_PRED,
        ndv_hint=1,
    )
    promo_rev, total_rev = result.value.get(0, [0, 0])
    ratio = 100.0 * promo_rev / total_rev if total_rev else 0.0
    dbms = DbmsCostModel(model)
    nbytes = lineitem.nbytes(
        ["l_shipdate", "l_partkey", "l_extendedprice", "l_discount"]
    )
    seconds = dbms.plan_seconds([
        ScanShape(rows=lineitem.num_rows, nbytes=nbytes, filter_terms=1,
                  aggregates=2, join_probes=1),
    ])
    return XeonOpResult(value=ratio, seconds=seconds, bytes_streamed=nbytes)




# -- Q10: returned item reporting (top customers by lost revenue) -------------

_Q10_LO = date_code(1993, 10, 1)
_Q10_HI = date_code(1994, 1, 1) - 1
_Q10_RETURNED = 2  # RETURN_FLAGS.index("R")


def q10_dpu(dpu: DPU, tables: Dict[str, DpuTable], data: TpchData) -> DpuOpResult:
    steps: List[DpuOpResult] = []
    num_orders = data.num_rows("orders")
    if num_orders >= 1 << 16:
        raise ValueError(
            "Q10's order->customer broadcast uses u16 customer codes; "
            "run at scale <= 0.04"
        )
    # 1. orders in the quarter -> orderkey bitmap.
    orders = dpu_filter(
        dpu, tables["orders"], Between("o_orderdate", _Q10_LO, _Q10_HI)
    )
    steps.append(orders)
    order_bitmap = key_bitmap(np.nonzero(orders.value)[0], num_orders)
    order_bc, _ = broadcast_array(dpu, "q10_orders", order_bitmap)
    # 2. order -> customer dense map (u16 codes), broadcast.
    cust_of_order = data.table("orders")["o_custkey"].astype(np.uint16)
    cust_bc, cust_view = broadcast_array(dpu, "q10_custs", cust_of_order)
    # 3. lineitem scan: returned items of those orders, revenue by
    # customer (looked-up group key).
    row_filter = bitmap_filter(
        "l_orderkey", order_bitmap, extra=Eq("l_returnflag", _Q10_RETURNED)
    )
    cust_key = GroupKey(
        fn=lambda c: cust_view[c["l_orderkey"].astype(np.int64)].astype(
            np.int64
        ),
        columns=("l_orderkey",),
        cycles_per_row=LOOKUP_CYCLES_PER_ROW,
        name="custkey",
    )
    grouped = dpu_groupby(
        dpu,
        tables["lineitem"],
        cust_key,
        [_REVENUE],
        row_filter=row_filter,
        ndv_hint=data.num_rows("customer"),
        broadcasts=(order_bc, cust_bc),
    )
    steps.append(grouped)
    ranked = sorted(
        grouped.value.items(), key=lambda item: (-item[1][0], item[0])
    )[:20]
    nations = data.table("customer")["c_nationkey"]
    rows = [
        (int(custkey), slots[0], int(nations[custkey]))
        for custkey, slots in ranked
    ]
    return _combine_dpu(steps, rows)


def q10_xeon(model: XeonModel, data: TpchData) -> XeonOpResult:
    orders = Table("orders", data.tables["orders"])
    lineitem = Table("lineitem", data.tables["lineitem"])
    sel_orders = xeon_filter(
        model, orders, Between("o_orderdate", _Q10_LO, _Q10_HI)
    )
    order_bitmap = key_bitmap(np.nonzero(sel_orders.value)[0],
                              orders.num_rows)
    cust_of_order = data.table("orders")["o_custkey"].astype(np.uint16)
    cust_key = GroupKey(
        fn=lambda c: cust_of_order[c["l_orderkey"].astype(np.int64)].astype(
            np.int64
        ),
        columns=("l_orderkey",),
        cycles_per_row=LOOKUP_CYCLES_PER_ROW,
        name="custkey",
    )
    grouped = xeon_groupby(
        model,
        lineitem,
        cust_key,
        [_REVENUE],
        row_filter=bitmap_filter(
            "l_orderkey", order_bitmap,
            extra=Eq("l_returnflag", _Q10_RETURNED),
        ),
        ndv_hint=data.num_rows("customer"),
    )
    ranked = sorted(
        grouped.value.items(), key=lambda item: (-item[1][0], item[0])
    )[:20]
    nations = data.table("customer")["c_nationkey"]
    rows = [
        (int(custkey), slots[0], int(nations[custkey]))
        for custkey, slots in ranked
    ]
    dbms = DbmsCostModel(model)
    seconds = dbms.plan_seconds([
        ScanShape(rows=orders.num_rows,
                  nbytes=orders.nbytes(["o_orderdate"]), filter_terms=1),
        ScanShape(rows=lineitem.num_rows,
                  nbytes=lineitem.nbytes(
                      ["l_orderkey", "l_returnflag", "l_extendedprice",
                       "l_discount"]),
                  filter_terms=2, aggregates=1, groupby=True, join_probes=2),
    ])
    return XeonOpResult(value=rows, seconds=seconds,
                        bytes_streamed=lineitem.nbytes(["l_orderkey"]))


# -- registry -------------------------------------------------------------------------

TPCH_QUERIES: Dict[str, TpchQuery] = {
    "Q1": TpchQuery("Q1", q1_dpu, q1_xeon, paper_gain_hint=12.0),
    "Q3": TpchQuery("Q3", q3_dpu, q3_xeon, paper_gain_hint=20.0),
    "Q5": TpchQuery("Q5", q5_dpu, q5_xeon, paper_gain_hint=15.0),
    "Q6": TpchQuery("Q6", q6_dpu, q6_xeon, paper_gain_hint=12.0),
    "Q10": TpchQuery("Q10", q10_dpu, q10_xeon, paper_gain_hint=15.0),
    "Q12": TpchQuery("Q12", q12_dpu, q12_xeon, paper_gain_hint=18.0),
    "Q14": TpchQuery("Q14", q14_dpu, q14_xeon, paper_gain_hint=15.0),
}


def run_query(
    name: str,
    dpu: DPU,
    tables: Dict[str, DpuTable],
    data: TpchData,
    model: XeonModel,
) -> Tuple[DpuOpResult, XeonOpResult]:
    query = TPCH_QUERIES[name]
    if dpu.trace.enabled:
        with dpu.trace.span(f"sql.query.{name}", unit="sql"):
            dpu_result = query.dpu_fn(dpu, tables, data)
    else:
        dpu_result = query.dpu_fn(dpu, tables, data)
    return dpu_result, query.xeon_fn(model, data)
