"""Partitioning planner (paper §5.3).

The query compiler sizes DMEM between buffers, metadata and the hash
table, computes how many partitions make each partition's hash table
fit, and decides how many partitioning *rounds* (full round trips
through DRAM) are needed:

* the DMS hardware partitions 32 ways *for free* — straight into the
  consuming cores' DMEMs, no DRAM round trip;
* a software round, run concurrently with the hardware round, adds
  another 32-way fanout (the paper sustains a 1024-way combined
  partition at 9 GB/s);
* each additional software round costs one read+write pass over the
  data.

The same math drives the Xeon baseline with its own fanout-per-round
limit, which is how the paper's "one round on the DPU, two on x86"
asymmetry for high-NDV group-by arises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["DmemBudget", "PartitionPlan", "plan_partitioning"]

HW_FANOUT = 32  # DMS partition fan-out (one per dpCore)
SW_FANOUT = 32  # software partitioning alongside, same pass
X86_FANOUT = 256  # per-pass software fanout on the Xeon baseline


@dataclass(frozen=True)
class DmemBudget:
    """How a core's 32 KB DMEM is split for a partitioned operator.

    Per §5.3: I/O buffers gain little beyond ~0.5 KB each, so most of
    DMEM goes to the hash table.
    """

    total: int = 32 * 1024
    io_buffers: int = 6 * 1024  # double-buffered in/out tiles
    metadata: int = 2 * 1024

    @property
    def hash_table(self) -> int:
        remaining = self.total - self.io_buffers - self.metadata
        if remaining <= 0:
            raise ValueError("DMEM budget leaves no room for the hash table")
        return remaining


@dataclass(frozen=True)
class PartitionPlan:
    """Rounds and fanout decisions for one partitioned operator."""

    partitions_needed: int
    dpu_sw_rounds: int  # DRAM round trips on the DPU (hw round is free)
    dpu_uses_hw: bool
    x86_rounds: int

    @property
    def dpu_memory_passes(self) -> float:
        """Effective full-data DRAM passes on the DPU: the final
        aggregation read plus read+write per software round."""
        return 1.0 + 2.0 * self.dpu_sw_rounds

    @property
    def x86_memory_passes(self) -> float:
        return 1.0 + 2.0 * self.x86_rounds


def plan_partitioning(
    ndv: int,
    group_record_bytes: int,
    budget: "DmemBudget | None" = None,
    num_cores: int = 32,
    x86_partition_target_bytes: int = 32 * 1024,
    x86_fanout: int = X86_FANOUT,
) -> PartitionPlan:
    """Compute partitioning rounds for ``ndv`` distinct groups.

    DPU: the operator needs ``ndv * record / hash_budget`` partitions.
    Up to 32 come free from the hardware partitioner (they also spread
    the work across cores); a concurrent software pass multiplies by
    32; beyond that, each extra software round multiplies by 32 again
    but costs a DRAM round trip.

    x86: partitions until each partition's hash table is L1-resident
    (the Polychroniou-Ross radix strategy the paper cites); each pass
    achieves at most ``x86_fanout`` (TLB-limited).
    """
    if budget is None:
        budget = DmemBudget()
    if ndv <= 0:
        raise ValueError(f"ndv must be positive: {ndv}")
    if group_record_bytes <= 0:
        raise ValueError(f"record bytes must be positive: {group_record_bytes}")

    table_bytes = ndv * group_record_bytes
    partitions_needed = max(1, math.ceil(table_bytes / budget.hash_table))

    if partitions_needed <= 1:
        # Low NDV: every core keeps the whole table in DMEM; no
        # partitioning at all, merge afterwards.
        dpu_sw_rounds = 0
        dpu_uses_hw = False
    else:
        # The free hardware round covers 32; one concurrent software
        # pass covers 32*32; each *extra* software round multiplies.
        dpu_uses_hw = True
        reach = HW_FANOUT
        dpu_sw_rounds = 0
        while reach < partitions_needed:
            reach *= SW_FANOUT
            dpu_sw_rounds += 1
        # The first software pass runs concurrently with the hardware
        # partition (§3.4: 1024-way at 9 GB/s), but it still needs its
        # own DRAM round trip to materialize the 32 super-partitions
        # consumed by later hardware rounds — except when everything
        # fits in one hardware round.
    # x86: partition until each table is ~L1-sized; each pass reaches
    # x86_fanout. The paper's high-NDV asymmetry (one DPU round vs two
    # x86 rounds) emerges for tables in the 8-24 MB range.
    x86_partitions = max(1, math.ceil(table_bytes / x86_partition_target_bytes))
    x86_rounds = 0
    reach = 1
    while reach < x86_partitions:
        reach *= x86_fanout
        x86_rounds += 1
    return PartitionPlan(
        partitions_needed=partitions_needed,
        dpu_sw_rounds=dpu_sw_rounds,
        dpu_uses_hw=dpu_uses_hw,
        x86_rounds=x86_rounds,
    )
