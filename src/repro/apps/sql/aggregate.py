"""Grouping and aggregation (paper §5.3).

Three physical strategies, chosen by the partition planner:

* **low-NDV** — every core builds the whole (small) group table in
  its DMEM over its static share of rows; a cheap merge operator
  combines the 32 partial tables (the paper: "when the number of
  distinct groups is low ... a merge operator is added after the
  grouping operator").

* **hardware-partitioned** (1 < partitions <= 32) — core 0 drives DMS
  partition chains that scatter (key, payload) records straight into
  all 32 cores' DMEMs; each core aggregates its own partition, so no
  DRAM round trip is needed ("especially useful for moderately sized
  hash tables"). Waves of chunks respect DMEM capacity, coordinated
  over the mailbox.

* **software round + hardware** (partitions <= 1024) — one
  read+write round through DRAM splits the table 32 ways by *other*
  hash bits (software partitioning runs at near memory bandwidth
  alongside the hardware partitioner, §3.4's 1024-way claim); each
  bucket then takes the hardware path.

All three paths move real bytes: the group tables the tests check are
aggregated from data that traveled through the simulated DMS.

The operator is deliberately general: aggregates may be arithmetic
expressions over several columns (Q1's ``sum(price * (1-disc))``) and
the row filter may be a :class:`~repro.apps.sql.expr.Predicate` or an
arbitrary mask function (which is how the join operator fuses a
semijoin probe into the aggregation, see :mod:`repro.apps.sql.join`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ...baseline.xeon import XeonModel
from ...core.crc32 import crc32_column
from ...core.dpu import DPU
from ...dms.descriptor import (
    Descriptor,
    DescriptorType,
    PartitionMode,
    PartitionSpec,
)
from ...dms.partition import PartitionLayout
from ...runtime.task import static_partition
from ...obs import traced_op
from ..streaming import WIDTH_DTYPE, ref_dtype, ref_width, stream_columns
from .costs import (
    AGG_CYCLES_PER_ROW,
    MERGE_CYCLES_PER_GROUP,
    SW_PARTITION_CYCLES_PER_ROW_COL,
)
from .engine import DpuOpResult, XeonOpResult
from .expr import Predicate
from .planner import DmemBudget, plan_partitioning
from .table import DpuTable, Table

__all__ = [
    "AggSpec",
    "Broadcast",
    "GroupKey",
    "RowFilter",
    "dpu_groupby",
    "xeon_groupby",
    "merge_groups",
]

_XEON_AGG_OPS_PER_ROW = 8.0  # scalar hash-agg update micro-ops
_XEON_PARTITION_OPS_PER_ROW = 4.0

Columns = Dict[str, np.ndarray]
GroupTable = Dict[int, List[float]]  # key -> one slot per aggregate


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: {sum, count, min, max} over a column or an
    expression of columns.

    ``AggSpec("sum", "l_quantity")`` or
    ``AggSpec("sum", expr=lambda c: c["p"] * (100 - c["d"]),
    expr_columns=("p", "d"), expr_cycles_per_row=2.0)`` — the cycle
    hint charges the dpCore for evaluating the expression.
    """

    op: str
    column: Optional[str] = None
    expr: Optional[Callable[[Columns], np.ndarray]] = None
    expr_columns: Tuple[str, ...] = ()
    expr_cycles_per_row: float = 0.0

    def __post_init__(self) -> None:
        if self.op not in ("sum", "count", "min", "max"):
            raise ValueError(f"unknown aggregate op {self.op!r}")
        if self.op != "count" and self.column is None and self.expr is None:
            raise ValueError(f"{self.op} needs a column or expression")
        if self.expr is not None and not self.expr_columns:
            raise ValueError("expression aggregates must list expr_columns")

    @property
    def name(self) -> str:
        if self.expr is not None:
            return f"{self.op}(expr{self.expr_columns})"
        return f"{self.op}({self.column or '*'})"

    def needed_columns(self) -> Tuple[str, ...]:
        if self.expr is not None:
            return self.expr_columns
        if self.column is not None:
            return (self.column,)
        return ()

    def values(self, columns: Columns) -> Optional[np.ndarray]:
        if self.op == "count" and self.column is None and self.expr is None:
            return None
        if self.expr is not None:
            return self.expr(columns)
        return columns[self.column]


@dataclass(frozen=True)
class Broadcast:
    """A small table broadcast into every core's DMEM (e.g. a join
    build side: a key bitmap or a dense key->value array).

    ``addr``/``nbytes`` locate it in DDR; each core DMS-loads it once
    before streaming. The functional lookup happens through numpy
    closures in the row filter / group key, which see the same bytes.
    """

    name: str
    addr: int
    nbytes: int


@dataclass(frozen=True)
class GroupKey:
    """A computed group key (e.g. a DMEM lookup of a streamed column).

    ``fn(columns) -> int array``; ``columns`` are the streamed inputs
    it reads; ``cycles_per_row`` charges the dpCore for the lookup
    arithmetic. Computed keys cannot drive the DMS hardware
    partitioner, so they are limited to the low-NDV strategy.
    """

    fn: Callable[[Columns], np.ndarray]
    columns: Tuple[str, ...]
    cycles_per_row: float = 2.0
    name: str = "expr_key"


@dataclass
class RowFilter:
    """A row mask over streamed columns, with its dpCore/x86 costs.

    Wraps either a scan :class:`Predicate` or an arbitrary function
    (e.g. a semijoin bitmap probe).
    """

    mask_fn: Callable[[Columns], np.ndarray]
    columns: Tuple[str, ...]
    dpu_cycles_per_row: float
    xeon_ops_per_row: float

    @classmethod
    def from_predicate(cls, predicate: Predicate) -> "RowFilter":
        return cls(
            mask_fn=predicate.mask,
            columns=tuple(predicate.column_names()),
            dpu_cycles_per_row=predicate.dpu_cycles_per_row(),
            xeon_ops_per_row=predicate.xeon_ops_per_row(),
        )


def _as_row_filter(
    row_filter: Union[None, Predicate, RowFilter]
) -> Optional[RowFilter]:
    if row_filter is None:
        return None
    if isinstance(row_filter, RowFilter):
        return row_filter
    return RowFilter.from_predicate(row_filter)


def _new_slots(aggs: List[AggSpec]) -> List[float]:
    slots: List[float] = []
    for agg in aggs:
        if agg.op == "min":
            slots.append(float("inf"))
        elif agg.op == "max":
            slots.append(float("-inf"))
        else:
            slots.append(0)
    return slots


def _update_groups(
    groups: GroupTable,
    keys: np.ndarray,
    value_arrays: List[Optional[np.ndarray]],
    aggs: List[AggSpec],
) -> None:
    """Vectorized per-tile group update (the functional half)."""
    if len(keys) == 0:
        return
    unique, inverse = np.unique(keys, return_inverse=True)
    per_agg: List[np.ndarray] = []
    for agg, values in zip(aggs, value_arrays):
        if agg.op == "count":
            per_agg.append(np.bincount(inverse, minlength=len(unique)))
        elif agg.op == "sum":
            per_agg.append(
                np.bincount(
                    inverse,
                    weights=values.astype(np.float64),
                    minlength=len(unique),
                )
            )
        elif agg.op == "min":
            out = np.full(len(unique), np.inf)
            np.minimum.at(out, inverse, values)
            per_agg.append(out)
        else:  # max
            out = np.full(len(unique), -np.inf)
            np.maximum.at(out, inverse, values)
            per_agg.append(out)
    key_list = unique.tolist()
    columns = [series.tolist() for series in per_agg]
    ops = [agg.op for agg in aggs]
    get = groups.get
    for position, key in enumerate(key_list):
        slots = get(key)
        if slots is None:
            slots = _new_slots(aggs)
            groups[key] = slots
        for slot, op in enumerate(ops):
            sample = columns[slot][position]
            if op == "sum" or op == "count":
                slots[slot] += sample
            elif op == "min":
                slots[slot] = min(slots[slot], sample)
            else:
                slots[slot] = max(slots[slot], sample)


def merge_groups(tables: Iterable[GroupTable], aggs: List[AggSpec]) -> GroupTable:
    """The paper's merge operator over per-core partial aggregates."""
    ops = [agg.op for agg in aggs]
    all_additive = all(op in ("sum", "count") for op in ops)
    merged: GroupTable = {}
    get = merged.get
    for table in tables:
        for key, slots in table.items():
            target = get(key)
            if target is None:
                merged[key] = list(slots)
            elif all_additive:
                # Same per-slot additions as the general path, batched
                # as a list comprehension (arithmetic order unchanged).
                merged[key] = [t + s for t, s in zip(target, slots)]
            else:
                for slot, op in enumerate(ops):
                    if op == "sum" or op == "count":
                        target[slot] += slots[slot]
                    elif op == "min":
                        target[slot] = min(target[slot], slots[slot])
                    else:
                        target[slot] = max(target[slot], slots[slot])
    return merged


def _needed_columns(
    key, aggs: List[AggSpec], row_filter: Optional[RowFilter]
) -> List[str]:
    if isinstance(key, GroupKey):
        names = list(key.columns)
    else:
        names = [key]
    for agg in aggs:
        for name in agg.needed_columns():
            if name not in names:
                names.append(name)
    if row_filter is not None:
        for name in row_filter.columns:
            if name not in names:
                names.append(name)
    return names


def _tile_update(
    groups: GroupTable,
    columns: Columns,
    key,
    aggs: List[AggSpec],
    row_filter: Optional[RowFilter],
) -> int:
    """Apply filter + aggregate one tile; returns selected count."""
    mask = row_filter.mask_fn(columns) if row_filter is not None else None
    if mask is not None:
        columns = {name: values[mask] for name, values in columns.items()}
    keys = key.fn(columns) if isinstance(key, GroupKey) else columns[key]
    value_arrays = [agg.values(columns) for agg in aggs]
    _update_groups(groups, keys, value_arrays, aggs)
    return len(keys)


def _agg_cycles(aggs: List[AggSpec]) -> float:
    return AGG_CYCLES_PER_ROW + sum(agg.expr_cycles_per_row for agg in aggs)


_BROADCAST_EVENT = 12


def _load_broadcasts(ctx, broadcasts, dmem_offset: int):
    """DMS-load each broadcast table into this core's DMEM once."""
    for broadcast in broadcasts:
        cursor = dmem_offset
        remaining = broadcast.nbytes
        while remaining > 0:
            piece = min(remaining, 8192)
            ctx.push(
                Descriptor(
                    dtype=DescriptorType.DDR_TO_DMEM,
                    rows=piece,
                    col_width=1,
                    ddr_addr=broadcast.addr + (broadcast.nbytes - remaining),
                    dmem_addr=cursor,
                    notify_event=_BROADCAST_EVENT,
                )
            )
            yield from ctx.wfe(_BROADCAST_EVENT)
            ctx.clear_event(_BROADCAST_EVENT)
            cursor += piece
            remaining -= piece
        dmem_offset += broadcast.nbytes


def _broadcast_bytes(broadcasts) -> int:
    return sum(broadcast.nbytes for broadcast in broadcasts)


@traced_op("sql.groupby")
def dpu_groupby(
    dpu: DPU,
    dtable: DpuTable,
    key: Union[str, GroupKey],
    aggs: List[AggSpec],
    row_filter: Union[None, Predicate, RowFilter] = None,
    ndv_hint: Optional[int] = None,
    tile_rows: int = 2048,
    budget: Optional[DmemBudget] = None,
    broadcasts: Tuple[Broadcast, ...] = (),
    governor=None,
) -> DpuOpResult:
    """Group ``dtable`` by ``key`` computing ``aggs`` on the DPU.

    ``governor`` (a :class:`~repro.runtime.admission.MemoryGovernor`)
    gates the software-partition strategy's DDR bucket footprint; see
    :func:`_groupby_one_sw_round`. ``None`` preserves the ungoverned
    plan and its timing exactly.
    """
    budget = budget or DmemBudget()
    filt = _as_row_filter(row_filter)
    if isinstance(key, GroupKey):
        host_columns = {
            name: dtable.table.column(name) for name in key.columns
        }
        key_values = key.fn(host_columns)
    else:
        key_values = dtable.table.column(key)
    ndv = int(ndv_hint) if ndv_hint is not None else len(np.unique(key_values))
    record_bytes = 8 + 8 * len(aggs)
    plan = plan_partitioning(ndv, record_bytes, budget)

    if isinstance(key, GroupKey) and plan.partitions_needed > 1:
        raise ValueError(
            "computed group keys cannot drive the hardware partitioner; "
            f"this key needs {plan.partitions_needed} partitions — "
            "materialize the key column first"
        )
    if plan.partitions_needed <= 1:
        result, cycles, nbytes = _groupby_low_ndv(
            dpu, dtable, key, aggs, filt, tile_rows, broadcasts
        )
    elif plan.partitions_needed <= 32:
        result, cycles, nbytes = _groupby_hw_partitioned(
            dpu, dtable, key, aggs, filt, broadcasts
        )
    else:
        if plan.dpu_sw_rounds > 1:
            raise ValueError(
                f"{plan.partitions_needed} partitions need "
                f"{plan.dpu_sw_rounds} software rounds; only one is "
                "implemented (enough for tables to ~24 GB of groups)"
            )
        result, cycles, nbytes = _groupby_one_sw_round(
            dpu, dtable, key, aggs, filt, tile_rows, broadcasts,
            governor=governor,
        )
    return DpuOpResult(
        value=result,
        cycles=cycles,
        config=dpu.config,
        bytes_streamed=nbytes,
        detail={
            "ndv": ndv,
            "partitions_needed": plan.partitions_needed,
            "sw_rounds": plan.dpu_sw_rounds,
            "groups": len(result),
        },
    )


# -- strategy 1: low NDV --------------------------------------------------


def _groupby_low_ndv(dpu, dtable, key, aggs, row_filter, tile_rows,
                     broadcasts=()):
    names = _needed_columns(key, aggs, row_filter)
    refs = dtable.column_refs(names)
    rows = dtable.num_rows
    cores = list(dpu.config.core_ids)
    filter_cycles = row_filter.dpu_cycles_per_row if row_filter else 0.0
    key_cycles = key.cycles_per_row if isinstance(key, GroupKey) else 0.0
    agg_cycles = _agg_cycles(aggs) + key_cycles
    bcast_bytes = _broadcast_bytes(broadcasts)
    # Broadcasts live at the top of DMEM; shrink stream tiles to fit.
    stream_budget = 30 * 1024 - bcast_bytes
    row_bytes = sum(ref_width(spec) for _addr, spec in refs)
    tile_rows = min(tile_rows,
                    max(64, (stream_budget // (2 * row_bytes)) // 64 * 64))

    def kernel(ctx):
        lo, hi = static_partition(rows, len(cores), ctx.core_id)
        groups: GroupTable = {}
        if lo < hi:
            if broadcasts:
                yield from _load_broadcasts(
                    ctx, broadcasts, ctx.dmem.size - bcast_bytes
                )
            shifted = [
                (addr + lo * ref_width(spec), spec) for addr, spec in refs
            ]

            def process(tile, tlo, thi, arrays):
                columns = dict(zip(names, arrays))
                selected = _tile_update(groups, columns, key, aggs, row_filter)
                return (thi - tlo) * filter_cycles + selected * agg_cycles

            yield from stream_columns(
                ctx, shifted, hi - lo, tile_rows, process, dmem_base=0
            )
        # Merge at core 0: everyone ships its partial table.
        if ctx.core_id != cores[0]:
            yield from ctx.mbox_send(cores[0], groups)
            return None
        merged = groups
        for _ in range(len(cores) - 1):
            _src, payload_groups = yield from ctx.mbox_receive()
            merged = merge_groups([merged, payload_groups], aggs)
            yield from ctx.compute(MERGE_CYCLES_PER_GROUP * len(payload_groups))
        return merged

    launch = dpu.launch(kernel, cores=cores)
    merged = launch.values[0]
    nbytes = dtable.nbytes(names)
    return merged, launch.cycles, nbytes


# -- strategy 2: hardware partitioning straight into DMEMs ------------------


def _record_layout(widths: List[int]) -> Tuple[int, List[int]]:
    offsets = []
    cursor = 0
    for width in widths:
        offsets.append(cursor)
        cursor += width
    return cursor, offsets


def _parse_records(raw: np.ndarray, dtypes: List[np.dtype]) -> List[np.ndarray]:
    """Split row-major records (from a DMS partition store) back into
    columns."""
    widths = [dtype.itemsize for dtype in dtypes]
    record_width, offsets = _record_layout(widths)
    count = len(raw) // record_width
    matrix = raw[: count * record_width].reshape(count, record_width)
    columns = []
    for offset, dtype in zip(offsets, dtypes):
        chunk = np.ascontiguousarray(
            matrix[:, offset : offset + dtype.itemsize]
        )
        columns.append(chunk.view(dtype).ravel())
    return columns


def _groupby_hw_partitioned(dpu, dtable, key, aggs, row_filter,
                            broadcasts=()):
    """Core 0 drives DMS partition waves; all cores aggregate their
    DMEM partitions."""
    names = _needed_columns(key, aggs, row_filter)
    refs = dtable.column_refs(names)
    rows = dtable.num_rows
    dtypes = [ref_dtype(spec) for _addr, spec in refs]
    widths = [dtype.itemsize for dtype in dtypes]
    record_width, _offsets = _record_layout(widths)
    cores = list(dpu.config.core_ids)
    filter_cycles = row_filter.dpu_cycles_per_row if row_filter else 0.0
    agg_cycles = _agg_cycles(aggs)

    # Wave sizing: a chunk fits a CMEM bank; the per-core DMEM output
    # buffer bounds rows per wave (2x slack for hash skew); broadcasts
    # occupy the space between the buffer and the count word.
    chunk_rows = max(64, dpu.config.cmem_bank_bytes // record_width)
    bcast_bytes = _broadcast_bytes(broadcasts)
    buffer_capacity = 18 * 1024
    if bcast_bytes > 12 * 1024:
        raise ValueError(
            f"broadcast tables of {bcast_bytes} B do not fit alongside "
            "the partition buffer; materialize the join differently"
        )
    count_offset = 31 * 1024
    wave_rows = int(len(cores) * (buffer_capacity / record_width) / 2)
    wave_chunks = max(1, wave_rows // chunk_rows)

    spec = PartitionSpec(mode=PartitionMode.HASH, radix_bits=5)
    layout = PartitionLayout(
        target_cores=tuple(cores),
        dmem_base=0,
        capacity=buffer_capacity,
        count_offset=count_offset,
    )
    driver = cores[0]

    def kernel(ctx):
        groups: GroupTable = {}
        is_driver = ctx.core_id == driver
        if broadcasts:
            yield from _load_broadcasts(ctx, broadcasts, buffer_capacity)
        if is_driver:
            ctx.push(
                Descriptor(
                    dtype=DescriptorType.HASH_CONFIG,
                    partition=spec,
                    partition_layout=layout,
                )
            )
        chunk_starts = list(range(0, rows, chunk_rows))
        wave_start = 0
        while True:
            wave = chunk_starts[wave_start : wave_start + wave_chunks]
            if is_driver:
                for start in wave:
                    count = min(chunk_rows, rows - start)
                    for col, (addr, _spec) in enumerate(refs):
                        width = widths[col]
                        ctx.push(
                            Descriptor(
                                dtype=DescriptorType.DDR_TO_DMS,
                                rows=count,
                                col_width=width,
                                ddr_addr=addr + start * width,
                                is_key_column=(col == 0),
                            )
                        )
                    ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMS,
                                        partition=spec))
                    ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMEM,
                                        partition=spec))
                while not ctx.dmad.idle():
                    yield from ctx.compute(200)
                for core in cores:
                    if core != driver:
                        yield from ctx.mbox_send(core, ("wave", len(wave)))
            else:
                yield from ctx.mbox_receive()
            # Aggregate this wave's partition buffer.
            count = int(ctx.dmem.view(count_offset, 4, np.uint32)[0])
            raw = ctx.dmem.view(0, count * record_width, np.uint8).copy()
            columns = dict(zip(names, _parse_records(raw, dtypes)))
            selected = _tile_update(groups, columns, key, aggs, row_filter)
            yield from ctx.compute(count * filter_cycles + selected * agg_cycles)
            # Ack, reset, continue (or stop after the final wave).
            done = wave_start + wave_chunks >= len(chunk_starts)
            if is_driver:
                for _ in range(len(cores) - 1):
                    yield from ctx.mbox_receive()
                layout.reset()
                for core in cores:
                    dpu.scratchpads[core].view(count_offset, 4, np.uint32)[0] = 0
                for core in cores:
                    if core != driver:
                        yield from ctx.mbox_send(core, ("next", done))
            else:
                yield from ctx.mbox_send(driver, ("ack",))
                yield from ctx.mbox_receive()
            wave_start += wave_chunks
            if done:
                break
        return groups

    launch = dpu.launch(kernel, cores=cores)
    merged = merge_groups(launch.values, aggs)  # disjoint keys: concat
    nbytes = sum(rows * width for width in widths)
    return merged, launch.cycles, nbytes


# -- strategy 3: one software round, then hardware ---------------------------


def _groupby_one_sw_round(dpu, dtable, key, aggs, row_filter, tile_rows,
                          broadcasts=(), governor=None):
    """Split into 32 DDR buckets by high hash bits (software, one
    read+write round), then run the hardware path per bucket.

    The bucket regions double the table's DDR footprint. With a
    :class:`~repro.runtime.admission.MemoryGovernor`, that footprint
    is acquired as an up-front grant; a denied grant degrades to
    row-chunked rounds — each chunk partitions and aggregates within
    the granted budget, freeing its bucket regions before the next
    chunk, and the per-chunk group tables merge associatively. Results
    are identical, only cycles grow. Without a governor the code path
    is exactly the single-round plan.
    """
    if governor is None:
        return _groupby_sw_round_range(
            dpu, dtable, key, aggs, row_filter, tile_rows, broadcasts,
            0, dtable.num_rows, free_regions=False,
        )
    names = _needed_columns(key, aggs, row_filter)
    refs = dtable.column_refs(names)
    widths = [ref_dtype(spec).itemsize for _addr, spec in refs]
    rows = dtable.num_rows
    row_bytes = sum(widths)
    need = rows * row_bytes + 32 * len(widths) * 8  # regions + alloc slack
    floor = max(row_bytes * 32 * 64, 4096)
    granted = governor.grant_or_largest(need, floor, site="sql.groupby.buckets")
    chunks = max(1, -(-need // granted))
    chunk_rows = -(-rows // chunks)
    merged: GroupTable = {}
    total_cycles = 0.0
    total_nbytes = 0
    for r0 in range(0, rows, chunk_rows):
        r1 = min(rows, r0 + chunk_rows)
        part, cycles, nbytes = _groupby_sw_round_range(
            dpu, dtable, key, aggs, row_filter, tile_rows, broadcasts,
            r0, r1, free_regions=True,
        )
        merged = merge_groups([merged, part], aggs)
        total_cycles += cycles
        total_nbytes += nbytes
    governor.release_grant(granted)
    return merged, total_cycles, total_nbytes


def _groupby_sw_round_range(dpu, dtable, key, aggs, row_filter, tile_rows,
                            broadcasts, r0, r1, free_regions):
    """One software partition round over rows [r0, r1)."""
    names = _needed_columns(key, aggs, row_filter)
    refs = dtable.column_refs(names)
    dtypes = [ref_dtype(spec) for _addr, spec in refs]
    widths = [dtype.itemsize for dtype in dtypes]
    rows = r1 - r0
    cores = list(dpu.config.core_ids)
    num_buckets = 32
    # DMEM budget: stream buffers below 20 KB, four 1.5 KB write
    # staging slots above (at 24..30 KB).
    tile_rows = min(
        tile_rows, max(64, (20 * 1024 // (2 * sum(widths))) // 64 * 64)
    )
    staging_bytes = 1536

    # Host-side sizing of bucket regions (models chained-block output
    # buffers): exact per-core x bucket counts.
    key_host = dtable.table.column(key)[r0:r1]
    bucket_of = ((crc32_column(key_host) >> np.uint32(5)) % num_buckets).astype(
        np.int64
    )

    core_ranges = {
        core: static_partition(rows, len(cores), index)
        for index, core in enumerate(cores)
    }
    counts = np.zeros((len(cores), num_buckets), dtype=np.int64)
    for index, core in enumerate(cores):
        lo, hi = core_ranges[core]
        counts[index] = np.bincount(bucket_of[lo:hi], minlength=num_buckets)
    bucket_totals = counts.sum(axis=0)

    # Region layout: [bucket][column][core slice]; all in fresh DDR.
    bucket_col_addr: Dict[Tuple[int, int], int] = {}
    for bucket in range(num_buckets):
        for col, width in enumerate(widths):
            bucket_col_addr[(bucket, col)] = dpu.alloc(
                max(int(bucket_totals[bucket]) * width, 8)
            )
    core_slice_start = np.zeros((len(cores), num_buckets), dtype=np.int64)
    core_slice_start[1:] = np.cumsum(counts[:-1], axis=0)

    staging_events = (8, 9, 10, 11)
    staging_slots = [24 * 1024 + i * staging_bytes for i in range(4)]

    def partition_kernel(ctx):
        index = cores.index(ctx.core_id)
        lo, hi = core_ranges[ctx.core_id]
        if lo >= hi:
            return None
        for event in staging_events:
            ctx.set_event(event)
        cursors = {
            (bucket, col): int(core_slice_start[index][bucket])
            for bucket in range(num_buckets)
            for col in range(len(widths))
        }
        shifted = [
            (addr + (r0 + lo) * ref_width(spec), spec) for addr, spec in refs
        ]
        # Per-(bucket, column) combining buffers: values accumulate
        # until a staging-slot-sized run is ready, so DDR writes are
        # large enough to amortize per-burst overheads (the classic
        # software-managed partition buffer; its DMEM footprint is the
        # staging area plus the stream tiles budgeted above).
        accum: Dict[Tuple[int, int], List[np.ndarray]] = {}
        accum_bytes: Dict[Tuple[int, int], int] = {}
        # FIFO of emitted runs awaiting write-back; a deque so the
        # drain loop stays O(1) per item however long the backlog gets.
        pending: deque = deque()

        def enqueue(slot_key) -> None:
            bucket, col = slot_key
            width = widths[col]
            run = np.concatenate(accum.pop(slot_key))
            accum_bytes.pop(slot_key)
            address = bucket_col_addr[slot_key] + cursors[slot_key] * width
            cursors[slot_key] += len(run)
            pending.append((run, width, address))

        def process(tile, tlo, thi, arrays):
            buckets_here = bucket_of[lo + tlo : lo + thi]
            order = np.argsort(buckets_here, kind="stable")
            sorted_buckets = buckets_here[order]
            boundaries = np.searchsorted(
                sorted_buckets, np.arange(num_buckets + 1)
            )
            for bucket in range(num_buckets):
                b_lo, b_hi = boundaries[bucket], boundaries[bucket + 1]
                if b_lo == b_hi:
                    continue
                take = order[b_lo:b_hi]
                for col, values in enumerate(arrays):
                    width = widths[col]
                    slot_key = (bucket, col)
                    accum.setdefault(slot_key, []).append(values[take].copy())
                    accum_bytes[slot_key] = (
                        accum_bytes.get(slot_key, 0) + len(take) * width
                    )
                    while accum_bytes.get(slot_key, 0) >= staging_bytes:
                        # Emit a full staging run; keep the remainder.
                        run = np.concatenate(accum[slot_key])
                        emit_count = staging_bytes // width
                        emit, rest = run[:emit_count], run[emit_count:]
                        address = (
                            bucket_col_addr[slot_key]
                            + cursors[slot_key] * width
                        )
                        cursors[slot_key] += len(emit)
                        pending.append((emit, width, address))
                        if len(rest):
                            accum[slot_key] = [rest]
                            accum_bytes[slot_key] = len(rest) * width
                        else:
                            accum.pop(slot_key)
                            accum_bytes.pop(slot_key, None)
                            break
            return (thi - tlo) * SW_PARTITION_CYCLES_PER_ROW_COL * len(arrays)

        stream = stream_columns(
            ctx, shifted, hi - lo, tile_rows, process, dmem_base=0
        )
        slot_rr = 0

        def drain():
            nonlocal slot_rr
            while pending:
                values, width, address = pending.popleft()
                slot = slot_rr % 4
                slot_rr += 1
                yield from ctx.wfe(staging_events[slot])
                ctx.clear_event(staging_events[slot])
                ctx.dmem.write(staging_slots[slot], values)
                ctx.push(
                    Descriptor(
                        dtype=DescriptorType.DMEM_TO_DDR,
                        rows=len(values),
                        col_width=width,
                        ddr_addr=address,
                        dmem_addr=staging_slots[slot],
                        notify_event=staging_events[slot],
                    ),
                    channel=1,
                )

        while True:
            try:
                event = next(stream)
            except StopIteration:
                break
            yield event
            yield from drain()
        for slot_key in sorted(accum):
            enqueue(slot_key)
        yield from drain()
        for event in staging_events:
            yield from ctx.wfe(event)
        return None

    launch = dpu.launch(partition_kernel, cores=cores)
    total_cycles = launch.cycles

    # Phase 2: hardware path per bucket, over the bucket's columns.
    merged: GroupTable = {}
    nbytes = sum(rows * width for width in widths) * 2  # read + write
    for bucket in range(num_buckets):
        total = int(bucket_totals[bucket])
        if total == 0:
            continue
        bucket_columns = {}
        for col, name in enumerate(names):
            addr = bucket_col_addr[(bucket, col)]
            bucket_columns[name] = dpu.load_array(addr, total, dtypes[col])
        sub_table = Table(name=f"{dtable.name}_b{bucket}", columns=bucket_columns)
        sub_addresses = {
            name: bucket_col_addr[(bucket, col)]
            for col, name in enumerate(names)
        }
        sub = DpuTable(table=sub_table, dpu=dpu, addresses=sub_addresses)
        bucket_groups, cycles, sub_bytes = _groupby_hw_partitioned(
            dpu, sub, key, aggs, row_filter, broadcasts
        )
        merged = merge_groups([merged, bucket_groups], aggs)
        total_cycles += cycles
        nbytes += sub_bytes
        if free_regions:
            # Governed mode: this bucket's regions are dead once its
            # groups are merged — release them so the next chunk's
            # allocations reuse the same footprint.
            for col in range(len(widths)):
                dpu.free(bucket_col_addr.pop((bucket, col)))
    if free_regions:
        for address in bucket_col_addr.values():
            dpu.free(address)  # empty buckets never entered phase 2
        bucket_col_addr.clear()
    return merged, total_cycles, nbytes


# -- Xeon baseline ---------------------------------------------------------------


def xeon_groupby(
    model: XeonModel,
    table: Table,
    key: str,
    aggs: List[AggSpec],
    row_filter: Union[None, Predicate, RowFilter] = None,
    ndv_hint: Optional[int] = None,
    budget: Optional[DmemBudget] = None,
) -> XeonOpResult:
    """Functional numpy group-by with roofline timing.

    Partition rounds follow the planner's x86 side: each round is a
    read+write pass over the grouped columns at effective bandwidth.
    """
    budget = budget or DmemBudget()
    filt = _as_row_filter(row_filter)
    rows = table.num_rows
    if isinstance(key, GroupKey):
        key_values = key.fn({name: table.column(name) for name in key.columns})
    else:
        key_values = table.column(key)
    ndv = int(ndv_hint) if ndv_hint is not None else len(np.unique(key_values))
    record_bytes = 8 + 8 * len(aggs)
    plan = plan_partitioning(ndv, record_bytes, budget)

    names = _needed_columns(key, aggs, filt)
    columns = {name: table.column(name) for name in names}
    groups: GroupTable = {}
    _tile_update(groups, columns, key, aggs, filt)

    nbytes = table.nbytes(names)
    instructions = rows * (
        _XEON_AGG_OPS_PER_ROW
        + (filt.xeon_ops_per_row if filt else 0.0)
        + plan.x86_rounds * _XEON_PARTITION_OPS_PER_ROW
    )
    seconds = model.roofline_seconds(
        instructions=instructions,
        nbytes=nbytes,
        memory_passes=plan.x86_memory_passes,
    )
    return XeonOpResult(
        value=groups,
        seconds=seconds,
        bytes_streamed=int(nbytes * plan.x86_memory_passes),
        detail={"ndv": ndv, "x86_rounds": plan.x86_rounds},
    )
