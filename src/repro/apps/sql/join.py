"""Join operators (paper §5.3: "other SQL operations like Join ...
using partitioning techniques similar to those described above").

TPC-H's joins are foreign-key joins on dense integer keys, which the
DPU engine executes as *broadcast lookups*: the build side reduces to
a bitmap (semijoin) or a dense key-indexed value array that fits each
core's DMEM, is DMS-broadcast once, and is probed at DMEM latency
while the probe side streams. The probe fuses into the group-by
(filter/lookup hooks of :mod:`repro.apps.sql.aggregate`), so a
filtered join + aggregation is still a single pass at DMS bandwidth.

For build sides too large for DMEM, :func:`dpu_partitioned_join_count`
partitions *both* tables 32 ways with the DMS hardware partitioner so
matching keys land on the same core, then builds and probes per core —
the paper's general strategy.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from ...baseline.xeon import XeonModel
from ...core.dpu import DPU
from ...dms.descriptor import (
    Descriptor,
    DescriptorType,
    PartitionMode,
    PartitionSpec,
)
from ...dms.partition import PartitionLayout
from ...obs import traced_op
from .costs import JOIN_BUILD_CYCLES_PER_ROW, JOIN_PROBE_CYCLES_PER_ROW
from .engine import DpuOpResult, XeonOpResult
from .expr import Predicate
from .aggregate import Broadcast, RowFilter, _as_row_filter

__all__ = [
    "key_bitmap",
    "bitmap_filter",
    "lookup_filter",
    "broadcast_array",
    "dpu_partitioned_join_count",
    "xeon_join_count",
    "BITMAP_PROBE_CYCLES_PER_ROW",
    "LOOKUP_CYCLES_PER_ROW",
]

# DMEM bitmap probe: load word + shift + mask + combine (dual-issued).
BITMAP_PROBE_CYCLES_PER_ROW = 3.0
# Dense array lookup: address arithmetic + DMEM load.
LOOKUP_CYCLES_PER_ROW = 2.0
_XEON_PROBE_OPS_PER_ROW = 4.0  # scalar hash/bitmap probe


def key_bitmap(selected_keys: np.ndarray, domain: int) -> np.ndarray:
    """Pack selected dense keys in ``[0, domain)`` into a bitmap of
    u64 words — the semijoin build side."""
    bits = np.zeros(domain, dtype=bool)
    bits[np.asarray(selected_keys, dtype=np.int64)] = True
    padded = np.zeros(-(-domain // 64) * 64, dtype=bool)
    padded[:domain] = bits
    return np.packbits(padded, bitorder="little").view(np.uint64)


def broadcast_array(dpu: DPU, name: str, values: np.ndarray) -> Tuple[
    Broadcast, np.ndarray
]:
    """Store a build-side array in DDR and describe its broadcast.

    Returns the :class:`Broadcast` (for DMEM load accounting) and the
    host view used by lookup closures.
    """
    address = dpu.store_array(values)
    return Broadcast(name=name, addr=address, nbytes=values.nbytes), values


def bitmap_filter(
    column: str,
    bitmap_words: np.ndarray,
    extra: Union[None, Predicate, RowFilter] = None,
) -> RowFilter:
    """RowFilter testing ``column``'s value against a DMEM bitmap,
    optionally ANDed with another filter."""
    bits = np.unpackbits(bitmap_words.view(np.uint8), bitorder="little")
    extra_filter = _as_row_filter(extra)

    def mask_fn(columns):
        keys = columns[column].astype(np.int64)
        mask = bits[keys].astype(bool)
        if extra_filter is not None:
            mask &= extra_filter.mask_fn(columns)
        return mask

    extra_columns = extra_filter.columns if extra_filter else ()
    return RowFilter(
        mask_fn=mask_fn,
        columns=tuple(dict.fromkeys((column, *extra_columns))),
        dpu_cycles_per_row=BITMAP_PROBE_CYCLES_PER_ROW
        + (extra_filter.dpu_cycles_per_row if extra_filter else 0.0),
        xeon_ops_per_row=_XEON_PROBE_OPS_PER_ROW
        + (extra_filter.xeon_ops_per_row if extra_filter else 0.0),
    )


def lookup_filter(
    column: str,
    table: np.ndarray,
    predicate_on_value,
    extra: Union[None, Predicate, RowFilter] = None,
) -> RowFilter:
    """RowFilter applying ``predicate_on_value`` to a dense-array
    lookup ``table[column]`` (e.g. "the part this row references is a
    PROMO part")."""
    extra_filter = _as_row_filter(extra)

    def mask_fn(columns):
        keys = columns[column].astype(np.int64)
        mask = np.asarray(predicate_on_value(table[keys]), dtype=bool)
        if extra_filter is not None:
            mask &= extra_filter.mask_fn(columns)
        return mask

    extra_columns = extra_filter.columns if extra_filter else ()
    return RowFilter(
        mask_fn=mask_fn,
        columns=tuple(dict.fromkeys((column, *extra_columns))),
        dpu_cycles_per_row=LOOKUP_CYCLES_PER_ROW + 1.0
        + (extra_filter.dpu_cycles_per_row if extra_filter else 0.0),
        xeon_ops_per_row=_XEON_PROBE_OPS_PER_ROW
        + (extra_filter.xeon_ops_per_row if extra_filter else 0.0),
    )


# -- general partitioned hash join -----------------------------------------


@traced_op("sql.join")
def dpu_partitioned_join_count(
    dpu: DPU,
    build_dtable,
    build_key: str,
    probe_dtable,
    probe_key: str,
    governor=None,
) -> DpuOpResult:
    """Count matching pairs with a 32-way hardware-partitioned join.

    Both tables are DMS hash-partitioned on the join key, so matching
    keys land in the same core's DMEM. Each core builds a hash table
    from its build partition and probes its probe partition. Matches
    are counted (the common kernel under semijoin/aggregate plans);
    rows move for real through the partition pipeline.

    With a :class:`~repro.runtime.admission.MemoryGovernor`, the build
    hash-table footprint (key + count per build row) is acquired as an
    up-front grant. A denied grant degrades to a segmented join: the
    build side is split into segments that fit the granted budget and
    the probe side is re-streamed once per segment — match counts are
    additive across disjoint build segments, so the result is exact;
    only cycles (and bytes streamed) grow. Without a governor the code
    path and its timing are exactly the single-pass plan.
    """
    cores = list(dpu.config.core_ids)
    spec = PartitionSpec(mode=PartitionMode.HASH, radix_bits=5)
    count_offset = 31 * 1024
    build_capacity = 10 * 1024
    probe_capacity = 18 * 1024
    driver = cores[0]

    from ..streaming import ref_dtype

    build_ref = build_dtable.column_ref(build_key)
    probe_ref = probe_dtable.column_ref(probe_key)
    build_rows = build_dtable.num_rows
    probe_rows = probe_dtable.num_rows
    build_dtype = ref_dtype(build_ref[1])
    probe_dtype = ref_dtype(probe_ref[1])
    build_width, probe_width = build_dtype.itemsize, probe_dtype.itemsize

    build_layout = PartitionLayout(
        target_cores=tuple(cores),
        dmem_base=0,
        capacity=build_capacity,
        count_offset=count_offset,
    )
    probe_layout = PartitionLayout(
        target_cores=tuple(cores),
        dmem_base=build_capacity,
        capacity=probe_capacity,
        count_offset=count_offset + 4,
    )

    def partition_waves(ctx, ref, rows, layout, wave_rows, phase_tag):
        """Driver-side: push chunks of one table in capacity waves."""
        addr = ref[0]
        width = ref_dtype(ref[1]).itemsize
        chunk_rows = min(2048, dpu.config.cmem_bank_bytes // width)
        position = 0
        while position < rows:
            wave_end = min(rows, position + wave_rows)
            while position < wave_end:
                count = min(chunk_rows, wave_end - position)
                ctx.push(
                    Descriptor(
                        dtype=DescriptorType.DDR_TO_DMS,
                        rows=count,
                        col_width=width,
                        ddr_addr=addr + position * width,
                        is_key_column=True,
                    )
                )
                ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMS,
                                    partition=spec))
                ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMEM,
                                    partition=spec))
                position += count
            while not ctx.dmad.idle():
                yield from ctx.compute(200)
            yield position  # wave boundary marker (consumed by kernel)

    # Memory grant: each build row costs a key plus a count slot in
    # the per-core hash tables. Under pressure, shrink to build
    # segments that fit the grant (probe side re-streamed per segment).
    build_row_cost = build_width + 8
    segments = 1
    granted = 0
    if governor is not None:
        need = max(build_rows, 1) * build_row_cost
        chunk = max(1, min(2048, dpu.config.cmem_bank_bytes // build_width))
        floor = min(need, chunk * build_row_cost)
        granted = governor.grant_or_largest(need, floor=floor,
                                            site="sql.join.build")
        segments = max(1, -(-need // granted))

    def make_kernel(seg_ref, seg_build_rows):
        def kernel(ctx):
            is_driver = ctx.core_id == driver
            matches = 0
            build_table = {}

            # Phase 1: partition the build side (usually one wave).
            build_wave_rows = int(
                len(cores) * (build_capacity / build_width) / 2
            )
            probe_wave_rows = int(
                len(cores) * (probe_capacity / probe_width) / 2
            )

            def run_phase(ref, rows, layout, wave_rows, consume):
                if is_driver:
                    ctx.push(
                        Descriptor(
                            dtype=DescriptorType.HASH_CONFIG,
                            partition=spec,
                            partition_layout=layout,
                        )
                    )
                    driver_gen = partition_waves(
                        ctx, ref, rows, layout, wave_rows, None
                    )
                    while True:
                        try:
                            step = next(driver_gen)
                        except StopIteration:
                            break
                        if isinstance(step, int):
                            # Wave complete: everyone consumes, then reset.
                            for core in cores:
                                if core != driver:
                                    yield from ctx.mbox_send(core, ("wave",))
                            yield from consume()
                            for _ in range(len(cores) - 1):
                                yield from ctx.mbox_receive()
                            layout.reset()
                            for core in cores:
                                dpu.scratchpads[core].view(
                                    layout.count_offset, 4, np.uint32
                                )[0] = 0
                            done = False
                            for core in cores:
                                if core != driver:
                                    yield from ctx.mbox_send(core, ("go",))
                        else:
                            yield step
                    for core in cores:
                        if core != driver:
                            yield from ctx.mbox_send(core, ("phase-done",))
                else:
                    while True:
                        _src, message = yield from ctx.mbox_receive()
                        if message[0] == "phase-done":
                            break
                        yield from consume()
                        yield from ctx.mbox_send(driver, ("ack",))
                        yield from ctx.mbox_receive()  # ("go",)

            def consume_build():
                count = int(
                    ctx.dmem.view(build_layout.count_offset, 4, np.uint32)[0]
                )
                raw = ctx.dmem.view(0, count * build_width, np.uint8).copy()
                keys = raw.view(build_dtype)
                for key in keys.tolist():
                    build_table[key] = build_table.get(key, 0) + 1
                yield from ctx.compute(count * JOIN_BUILD_CYCLES_PER_ROW)

            def consume_probe():
                nonlocal matches
                count = int(
                    ctx.dmem.view(probe_layout.count_offset, 4, np.uint32)[0]
                )
                raw = ctx.dmem.view(
                    build_capacity, count * probe_width, np.uint8
                ).copy()
                keys = raw.view(probe_dtype)
                for key in keys.tolist():
                    matches += build_table.get(key, 0)
                yield from ctx.compute(count * JOIN_PROBE_CYCLES_PER_ROW)

            yield from run_phase(
                seg_ref, seg_build_rows, build_layout, build_wave_rows,
                consume_build,
            )
            yield from run_phase(
                probe_ref, probe_rows, probe_layout, probe_wave_rows,
                consume_probe,
            )
            return matches

        return kernel

    seg_rows_max = -(-build_rows // segments) if build_rows else 0
    total_matches = 0
    total_cycles = 0.0
    ran_segments = 0
    for seg in range(segments):
        b0 = seg * seg_rows_max
        seg_build_rows = min(seg_rows_max, build_rows - b0)
        if segments > 1 and seg_build_rows <= 0:
            break
        seg_ref = (build_ref[0] + b0 * build_width, build_ref[1])
        launch = dpu.launch(
            make_kernel(seg_ref, seg_build_rows), cores=cores
        )
        total_matches += sum(launch.values)
        total_cycles += launch.cycles
        ran_segments += 1
    if governor is not None and granted:
        governor.release_grant(granted)
    nbytes = (build_rows * build_width
              + ran_segments * probe_rows * probe_width)
    return DpuOpResult(
        value=total_matches,
        cycles=total_cycles,
        config=dpu.config,
        bytes_streamed=nbytes,
        detail={"build_rows": build_rows, "probe_rows": probe_rows,
                "build_segments": ran_segments},
    )


def xeon_join_count(
    model: XeonModel,
    build_keys: np.ndarray,
    probe_keys: np.ndarray,
) -> XeonOpResult:
    """Baseline hash-join match count (functional + roofline)."""
    unique, counts = np.unique(build_keys, return_counts=True)
    table = dict(zip(unique.tolist(), counts.tolist()))
    matches = sum(table.get(key, 0) for key in probe_keys.tolist())
    nbytes = build_keys.nbytes + probe_keys.nbytes
    instructions = (
        len(build_keys) * JOIN_BUILD_CYCLES_PER_ROW
        + len(probe_keys) * _XEON_PROBE_OPS_PER_ROW
    )
    seconds = model.roofline_seconds(
        instructions=instructions, nbytes=nbytes, memory_passes=1.5
    )
    return XeonOpResult(value=matches, seconds=seconds, bytes_streamed=nbytes)
