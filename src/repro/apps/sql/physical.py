"""Physical planner: logical plan -> executable DPU / Xeon operators.

Layers 3 and 4 of the compile pipeline (see ``docs/SQL.md``). The
lowering maps every supported query onto the engine's one fused
physical shape — a single streaming group-by over the fact table:

* fused fact-column ranges / IN lists become scan ``Predicate``s
  (SETFL/SETFH/FILT passes);
* per-dimension filter subtrees fold host-side into semijoin key
  bitmaps, DMS-broadcast and probed per fact row (``key_bitmap``);
* values needed from dimension rows (group keys, aggregate inputs,
  cross-chain equalities) become dense key-indexed lookup arrays,
  broadcast once and indexed by the streamed foreign key;
* GROUP BY lowers to a hardware-partitionable column key, or a
  mixed-radix :class:`GroupKey` over multiple / looked-up columns;
* the host-side ``finish`` decodes group keys, gathers functionally
  determined columns, evaluates aggregate arithmetic (``avg``,
  ratios), sorts deterministically and applies LIMIT.

The cost model makes two recorded decisions per query: DPU offload vs
the Xeon baseline (``DbmsCostModel`` roofline vs the DPU streaming
estimate) and all-to-all shuffle vs pre-aggregate exchange for the
cluster run (``ShuffleRackModel.job_cycles`` at the target fan-out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ...baseline.dbms import DbmsCostModel, ScanShape
from ...baseline.xeon import XeonModel
from ...core.config import DPUConfig
from .aggregate import (
    AggSpec,
    GroupKey,
    GroupTable,
    RowFilter,
    _needed_columns,
    dpu_groupby,
    xeon_groupby,
)
from .costs import AGG_CYCLES_PER_ROW, FILTER_CYCLES_PER_TUPLE
from .engine import DpuOpResult, XeonOpResult
from .expr import And, Between, Ge, InSet, Le, Or, Predicate
from .ir import (
    AggCall,
    Arith,
    Case,
    Catalog,
    Cmp,
    InList,
    Lit,
    Logic,
    LogicalPlan,
    PlanError,
    RangeTest,
    Ref,
    sql_repr,
)
from .join import (
    BITMAP_PROBE_CYCLES_PER_ROW,
    LOOKUP_CYCLES_PER_ROW,
    broadcast_array,
    key_bitmap,
)
from .planner import DmemBudget, plan_partitioning
from .table import Table

__all__ = ["CompiledQuery", "lower_plan", "tpch_catalog"]

_XEON_PROBE_OPS_PER_ROW = 4.0
_HW_BROADCAST_LIMIT = 12 * 1024  # aggregate.py's hw-partitioned ceiling
_LOW_NDV_STREAM_BYTES = 30 * 1024  # low-NDV streaming DMEM budget
_EXCHANGE_FANOUT = 8  # the cluster width the exchange choice targets


def tpch_catalog(data) -> Catalog:
    """The TPC-H star schema over a generated :class:`TpchData`."""
    from ...workloads.tpch import (
        LINE_STATUSES,
        NATIONS,
        PRIORITIES,
        REGIONS,
        RETURN_FLAGS,
        SEGMENTS,
        SHIP_MODES,
    )

    tables = getattr(data, "tables", data)
    return Catalog(
        tables={name: dict(columns) for name, columns in tables.items()},
        pks={
            "orders": "o_orderkey",
            "customer": "c_custkey",
            "part": "p_partkey",
            "supplier": "s_suppkey",
            "nation": "n_nationkey",
            "region": "r_regionkey",
        },
        dictionaries={
            "l_returnflag": RETURN_FLAGS,
            "l_linestatus": LINE_STATUSES,
            "l_shipmode": SHIP_MODES,
            "c_mktsegment": SEGMENTS,
            "o_orderpriority": PRIORITIES,
        },
        scales={
            "l_extendedprice": 100,
            "l_discount": 100,
            "l_tax": 100,
        },
        aliases={
            "n_name": ("nation", "n_nationkey", NATIONS),
            "r_name": ("region", "r_regionkey", REGIONS),
        },
        prefix_ranges={"p_type": {"PROMO": (0, 24)}},
    )


# -- host-side expression evaluation -----------------------------------------


def _compose_from(catalog: Catalog, chain, column: str,
                  start: int) -> np.ndarray:
    """Dense lookup array for ``column`` of the chain's last table,
    indexed by the primary key of ``chain[start][1]``."""
    arr = catalog.column(chain[-1][1], column)
    for index in range(len(chain) - 1, start, -1):
        prev_table = chain[index - 1][1]
        fk = chain[index][0]
        arr = arr[catalog.column(prev_table, fk)]
    return arr


class _Lowering:
    """Per-query lowering context: broadcast registry + closures."""

    def __init__(self, plan: LogicalPlan, catalog: Catalog) -> None:
        self.plan = plan
        self.catalog = catalog
        self.broadcasts: List[Tuple[str, np.ndarray]] = []
        self._lookup_cache: Dict[Tuple, Tuple[str, np.ndarray]] = {}
        self.num_probes = 0
        self.num_lookups = 0

    def lookup_array(self, ref: Ref) -> Tuple[str, np.ndarray]:
        """Register (once) the fact-indexed lookup array for a chained
        ref; returns ``(fact_fk_column, array)``."""
        cache_key = (ref.chain, ref.column)
        if cache_key not in self._lookup_cache:
            arr = _compose_from(self.catalog, ref.chain, ref.column, 0)
            name = f"lk_{ref.chain[0][0]}_{ref.column}"
            self.broadcasts.append((name, arr))
            self._lookup_cache[cache_key] = (ref.chain[0][0], arr)
            self.num_lookups += 1
        return self._lookup_cache[cache_key]

    def scalar_fn(self, node: Any) -> Tuple[Callable, List[str]]:
        """Compile a bound scalar AST into ``fn(streamed_columns)``
        returning an int64 (or boolean) ndarray; also returns the
        streamed fact columns it reads, in first-use order."""
        columns: List[str] = []

        def need(column: str) -> None:
            if column not in columns:
                columns.append(column)

        def compile_node(node: Any) -> Callable:
            if isinstance(node, Ref):
                if not node.chain:
                    column = node.column
                    need(column)
                    return lambda c: c[column].astype(np.int64)
                fk, arr = self.lookup_array(node)
                need(fk)
                return lambda c: arr[c[fk].astype(np.int64)].astype(np.int64)
            if isinstance(node, Lit):
                value = node.value
                return lambda c: value
            if isinstance(node, Arith):
                if node.op == "/":
                    raise PlanError(
                        "division inside streamed expressions is not "
                        "supported (divide aggregates instead)",
                        query=self.plan.text, clause="expression")
                left, right = compile_node(node.left), compile_node(node.right)
                op = node.op
                if op == "+":
                    return lambda c: left(c) + right(c)
                if op == "-":
                    return lambda c: left(c) - right(c)
                return lambda c: left(c) * right(c)
            if isinstance(node, Cmp):
                left, right = compile_node(node.left), compile_node(node.right)
                op = node.op
                ops = {
                    "=": lambda a, b: a == b,
                    "<>": lambda a, b: a != b,
                    "<": lambda a, b: a < b,
                    "<=": lambda a, b: a <= b,
                    ">": lambda a, b: a > b,
                    ">=": lambda a, b: a >= b,
                }[op]
                return lambda c: ops(left(c), right(c))
            if isinstance(node, RangeTest):
                expr = compile_node(node.expr)
                lo, hi = compile_node(node.lo), compile_node(node.hi)
                return lambda c: (expr(c) >= lo(c)) & (expr(c) <= hi(c))
            if isinstance(node, InList):
                expr = compile_node(node.expr)
                values = np.asarray(
                    [v.value for v in node.values], dtype=np.int64)
                return lambda c: np.isin(expr(c), values)
            if isinstance(node, Logic):
                parts = [compile_node(arg) for arg in node.args]
                if node.op == "and":
                    def all_fn(c, parts=parts):
                        out = parts[0](c)
                        for part in parts[1:]:
                            out = out & part(c)
                        return out
                    return all_fn

                def any_fn(c, parts=parts):
                    out = parts[0](c)
                    for part in parts[1:]:
                        out = out | part(c)
                    return out
                return any_fn
            if isinstance(node, Case):
                whens = [(compile_node(cond), compile_node(result))
                         for cond, result in node.whens]
                default = compile_node(node.default)

                def case_fn(c, whens=whens, default=default):
                    out = np.asarray(default(c))
                    for cond, result in reversed(whens):
                        out = np.where(cond(c), result(c), out)
                    return out.astype(np.int64)
                return case_fn
            raise PlanError(
                f"unsupported streamed expression {sql_repr(node)}",
                query=self.plan.text, clause="expression")

        return compile_node(node), columns

    def expr_costs(self, node: Any) -> Tuple[int, int]:
        """(lookup count, op count) of a bound scalar expression."""
        lookups: set = set()

        def walk(node: Any) -> int:
            if isinstance(node, Ref):
                if node.chain:
                    lookups.add((node.chain, node.column))
                return 0
            if isinstance(node, Lit):
                return 0
            if isinstance(node, (Arith, Cmp)):
                return 1 + walk(node.left) + walk(node.right)
            if isinstance(node, RangeTest):
                return 1 + walk(node.expr) + walk(node.lo) + walk(node.hi)
            if isinstance(node, InList):
                return len(node.values) + walk(node.expr)
            if isinstance(node, Logic):
                return len(node.args) - 1 + sum(walk(a) for a in node.args)
            if isinstance(node, Case):
                ops = len(node.whens) + walk(node.default)
                for cond, result in node.whens:
                    ops += walk(cond) + walk(result)
                return ops
            return 0

        ops = walk(node)
        return len(lookups), ops


def _eval_dim(node: Any, columns: Dict[str, np.ndarray],
              text: str) -> np.ndarray:
    """Host evaluation of a bound dimension conjunct -> boolean mask."""
    if isinstance(node, Ref):
        return columns[node.column].astype(np.int64)
    if isinstance(node, Lit):
        return node.value
    if isinstance(node, Arith):
        left = _eval_dim(node.left, columns, text)
        right = _eval_dim(node.right, columns, text)
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        raise PlanError("division in dimension predicates is not supported",
                        query=text, clause="where")
    if isinstance(node, Cmp):
        left = _eval_dim(node.left, columns, text)
        right = _eval_dim(node.right, columns, text)
        return {
            "=": lambda a, b: a == b,
            "<>": lambda a, b: a != b,
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }[node.op](left, right)
    if isinstance(node, RangeTest):
        value = _eval_dim(node.expr, columns, text)
        lo = _eval_dim(node.lo, columns, text)
        hi = _eval_dim(node.hi, columns, text)
        return (value >= lo) & (value <= hi)
    if isinstance(node, InList):
        value = _eval_dim(node.expr, columns, text)
        members = np.asarray([v.value for v in node.values], dtype=np.int64)
        return np.isin(value, members)
    if isinstance(node, Logic):
        masks = [_eval_dim(arg, columns, text) for arg in node.args]
        out = masks[0]
        for mask in masks[1:]:
            out = (out & mask) if node.op == "and" else (out | mask)
        return out
    raise PlanError(f"unsupported dimension predicate {sql_repr(node)}",
                    query=text, clause="where")


# -- group-key lowering -------------------------------------------------------


@dataclass
class _KeyItem:
    ref: Ref
    kind: str  # "column" | "lookup"
    fact_column: str
    arr: Optional[np.ndarray]
    lo: int
    span: int
    multiplier: int = 1


def _determines(a: Ref, b: Ref, catalog: Catalog) -> bool:
    """True if group-key ref ``a`` functionally determines ref ``b``."""
    if not a.chain:
        # A plain fact column determines chained refs whose first hop
        # streams that column (it is the fk; the dim pk is dense).
        return bool(b.chain) and b.chain[0][0] == a.column
    if catalog.is_pk(a.table, a.column):
        return len(b.chain) >= len(a.chain) \
            and b.chain[:len(a.chain)] == a.chain
    return False


# -- the compiled query -------------------------------------------------------


@dataclass
class CompiledQuery:
    """An executable physical plan for one SQL query.

    Runs three ways: :meth:`run_xeon` (baseline cost model +
    functional numpy), :meth:`run_dpu` (single simulated DPU), and —
    through :func:`repro.cluster.scaleout.cluster_compiled_query` —
    on a 2/4/8-DPU cluster via :meth:`run_local` per shard or shuffle
    slot. All three produce byte-equal ``finish`` output.
    """

    name: str
    sql: str
    fact: str
    key: Union[str, GroupKey]
    key_column: Optional[str]  # set iff the key shuffles by a column
    aggs: List[AggSpec]
    row_filter: Union[None, Predicate, RowFilter]
    broadcasts: List[Tuple[str, np.ndarray]]
    needed_columns: List[str]
    finish: Callable[[GroupTable], Tuple]
    plan: Dict[str, Any]
    record_bytes: int
    logical: LogicalPlan = field(repr=False, default=None)
    # Catalog.version at lowering time: broadcasts and finish gathers
    # were built from that snapshot, so a plan is only valid while the
    # catalog still carries this version (see repro.serve.PlanCache).
    catalog_version: int = 0

    @property
    def batch_key(self) -> Tuple[str, int]:
        """Shared-scan compatibility class.

        Queries with equal keys stream the same fact table at the same
        catalog version, so a serving batch can store the union of
        their needed columns once per DPU and run each query's
        group-by against that single resident copy
        (:func:`~repro.cluster.scaleout.cluster_batched_queries`).
        Every query can batch under ``pre_aggregate``; all-to-all
        plans lose their planner-chosen exchange when batched, so the
        serving layer only batches them when riding along is still a
        win (it re-checks ``plan["exchange"]``).
        """
        return (self.fact, self.catalog_version)

    # -- execution ------------------------------------------------------
    def _fact_columns(self, data) -> Dict[str, np.ndarray]:
        tables = getattr(data, "tables", data)
        fact = tables[self.fact]
        return {name: fact[name] for name in self.needed_columns}

    def _dpu_broadcasts(self, dpu) -> Tuple:
        return tuple(
            broadcast_array(dpu, name, arr)[0]
            for name, arr in self.broadcasts
        )

    def run_dpu(self, dpu, data) -> DpuOpResult:
        table = Table(self.fact, self._fact_columns(data))
        dtable = table.to_dpu(dpu)
        result = dpu_groupby(
            dpu, dtable, self.key, self.aggs,
            row_filter=self.row_filter,
            broadcasts=self._dpu_broadcasts(dpu),
        )
        return DpuOpResult(
            value=self.finish(result.value),
            cycles=result.cycles,
            config=result.config,
            bytes_streamed=result.bytes_streamed,
            detail={**result.detail, "groups": len(result.value)},
        )

    def run_xeon(self, model: XeonModel, data) -> XeonOpResult:
        table = Table(self.fact, self._fact_columns(data))
        functional = xeon_groupby(
            model, table, self.key, self.aggs, row_filter=self.row_filter,
        )
        dbms = DbmsCostModel(model)
        seconds = dbms.plan_seconds([self.scan_shape(table.num_rows,
                                                     table.nbytes())])
        return XeonOpResult(
            value=self.finish(functional.value),
            seconds=seconds,
            bytes_streamed=table.nbytes(),
            detail={"roofline_seconds": functional.seconds,
                    "groups": len(functional.value)},
        )

    def run_auto(self, dpu, model: XeonModel, data):
        """Execute on the side the offload decision picked."""
        if self.plan["offload"]["choice"] == "dpu":
            return self.run_dpu(dpu, data)
        return self.run_xeon(model, data)

    def run_local(self, dpu, columns: Dict[str, np.ndarray],
                  shard_name: str = "shard") -> Tuple[GroupTable, float]:
        """One shard / shuffle slot of the cluster run: raw partial
        groups + cycles (the coordinator merges and finishes)."""
        if not columns or len(next(iter(columns.values()))) == 0:
            return {}, 0.0
        table = Table(
            f"{self.fact}_{shard_name}",
            {name: columns[name] for name in self.needed_columns},
        )
        dtable = table.to_dpu(dpu)
        result = dpu_groupby(
            dpu, dtable, self.key, self.aggs,
            row_filter=self.row_filter,
            broadcasts=self._dpu_broadcasts(dpu),
        )
        return result.value, result.cycles

    def scan_shape(self, rows: int, nbytes: int) -> ScanShape:
        return ScanShape(
            rows=rows,
            nbytes=nbytes,
            filter_terms=self.plan["filter_terms"],
            aggregates=len(self.aggs),
            groupby=self.plan["groupby"],
            join_probes=self.plan["join_probes"],
        )


# -- lowering -----------------------------------------------------------------


def _plain_predicates(plan: LogicalPlan) -> List[Predicate]:
    preds: List[Predicate] = []
    for fused in plan.fact_ranges:
        if fused.lo is None and fused.hi is None:
            continue
        if fused.lo is None:
            preds.append(Le(fused.column, fused.hi))
        elif fused.hi is None:
            preds.append(Ge(fused.column, fused.lo))
        else:
            preds.append(Between(fused.column, fused.lo, fused.hi))
    for column, values in plan.fact_insets:
        preds.append(InSet(column, values))
    for node in plan.fact_or:
        preds.append(_or_predicate(node, plan.text))
    return preds


def _or_predicate(node: Logic, text: str) -> Predicate:
    children: List[Predicate] = []
    for arg in node.args:
        if isinstance(arg, Cmp) and isinstance(arg.left, Ref) \
                and isinstance(arg.right, Lit):
            column, value = arg.left.column, arg.right.value
            if arg.op == "=":
                children.append(Between(column, value, value))
            elif arg.op == "<=":
                children.append(Le(column, value))
            elif arg.op == "<":
                children.append(Le(column, value - 1))
            elif arg.op == ">=":
                children.append(Ge(column, value))
            else:
                children.append(Ge(column, value + 1))
        elif isinstance(arg, RangeTest) and isinstance(arg.expr, Ref):
            children.append(Between(arg.expr.column, arg.lo.value,
                                    arg.hi.value))
        elif isinstance(arg, InList) and isinstance(arg.expr, Ref):
            children.append(InSet(
                arg.expr.column,
                tuple(v.value for v in arg.values)))
        else:
            raise PlanError("OR arm is not a plain fact range",
                            query=text, clause="where")
    return Or(children)


def _build_semijoins(plan: LogicalPlan, catalog: Catalog,
                     ctx: _Lowering) -> List[Tuple[str, np.ndarray]]:
    """One packed bitmap per fact foreign key whose dimension subtree
    carries filters; deeper-dimension filters fold host-side."""
    if not plan.dim_conjuncts:
        return []
    children: Dict[str, List[Tuple[str, str]]] = {}
    for table, chain in plan.chains.items():
        if not chain:
            continue
        parent = plan.fact if len(chain) == 1 else chain[-2][1]
        children.setdefault(parent, []).append((chain[-1][0], table))

    relevant = set()
    for table in plan.dim_conjuncts:
        chain = plan.chains[table]
        for depth in range(1, len(chain) + 1):
            relevant.add(chain[depth - 1][1])

    def table_mask(table: str) -> np.ndarray:
        mask = np.ones(catalog.num_rows(table), dtype=bool)
        columns = catalog.tables[table]
        for conjunct in plan.dim_conjuncts.get(table, []):
            mask &= np.asarray(
                _eval_dim(conjunct, columns, plan.text), dtype=bool)
        for fk, child in children.get(table, []):
            if child in relevant:
                child_mask = table_mask(child)
                mask &= child_mask[columns[fk].astype(np.int64)]
        return mask

    probes: List[Tuple[str, np.ndarray]] = []
    # join_order lists roots most-selective-first; apply in that order.
    ordered_roots = [(entry["fact_fk"], entry["dim"])
                     for entry in plan.join_order]
    for fk, dim in ordered_roots:
        if dim not in relevant:
            continue
        mask = table_mask(dim)
        selected = np.nonzero(mask)[0]
        if len(selected) == 0:
            # Degenerate empty semijoin: keep a valid all-zero bitmap.
            words = np.zeros(max(1, -(-catalog.num_rows(dim) // 64)),
                             dtype=np.uint64)
        else:
            words = key_bitmap(selected, catalog.num_rows(dim))
        ctx.broadcasts.append((f"sj_{fk}", words))
        ctx.num_probes += 1
        probes.append((fk, words))
    return probes


def _build_row_filter(plan: LogicalPlan, catalog: Catalog,
                      ctx: _Lowering) -> Union[None, Predicate, RowFilter]:
    plains = _plain_predicates(plan)
    probes = _build_semijoins(plan, catalog, ctx)
    cross_terms: List[Tuple] = []
    for left, right in plan.cross_eqs:
        sides = []
        for ref in (left, right):
            if not ref.chain:
                sides.append(("column", ref.column, None))
            else:
                fk, arr = ctx.lookup_array(ref)
                sides.append(("lookup", fk, arr))
        cross_terms.append(tuple(sides))
    complex_fns = []
    for node in plan.fact_complex:
        fn, _cols = ctx.scalar_fn(node)
        complex_fns.append((node, fn))

    if not probes and not cross_terms and not complex_fns:
        if not plains:
            return None
        return plains[0] if len(plains) == 1 else And(plains)

    plain_pred = None
    if plains:
        plain_pred = plains[0] if len(plains) == 1 else And(plains)

    columns: List[str] = []

    def need(column: str) -> None:
        if column not in columns:
            columns.append(column)

    if plain_pred is not None:
        for column in plain_pred.column_names():
            need(column)
    for node, _fn in complex_fns:
        for ref in _refs_in(node):
            need(ref.column if not ref.chain else ref.chain[0][0])
    for fk, _words in probes:
        need(fk)
    for sides in cross_terms:
        for kind, column, _arr in sides:
            need(column)

    probe_bits = [
        (fk, np.unpackbits(words.view(np.uint8), bitorder="little"))
        for fk, words in probes
    ]

    def mask_fn(streamed, plain_pred=plain_pred, probe_bits=probe_bits,
                cross_terms=cross_terms, complex_fns=complex_fns):
        rows = len(next(iter(streamed.values())))
        mask = np.ones(rows, dtype=bool)
        if plain_pred is not None:
            mask &= plain_pred.mask(streamed)
        for fk, bits in probe_bits:
            keys = streamed[fk].astype(np.int64)
            mask &= bits[keys].astype(bool)
        for sides in cross_terms:
            values = []
            for kind, column, arr in sides:
                streamed_col = streamed[column].astype(np.int64)
                if kind == "lookup":
                    values.append(arr[streamed_col].astype(np.int64))
                else:
                    values.append(streamed_col)
            mask &= values[0] == values[1]
        for _node, fn in complex_fns:
            mask &= np.asarray(fn(streamed), dtype=bool)
        return mask

    dpu_cycles = (plain_pred.dpu_cycles_per_row() if plain_pred else 0.0)
    xeon_ops = (plain_pred.xeon_ops_per_row() if plain_pred else 0.0)
    dpu_cycles += BITMAP_PROBE_CYCLES_PER_ROW * len(probes)
    xeon_ops += _XEON_PROBE_OPS_PER_ROW * len(probes)
    for sides in cross_terms:
        lookups = sum(1 for kind, _c, _a in sides if kind == "lookup")
        dpu_cycles += LOOKUP_CYCLES_PER_ROW * lookups + 1.0
        xeon_ops += 2.0 * lookups + 1.0
    for node, _fn in complex_fns:
        _lookups, ops = ctx.expr_costs(node)
        dpu_cycles += FILTER_CYCLES_PER_TUPLE * max(1, ops)
        xeon_ops += 0.25 * max(1, ops)

    return RowFilter(
        mask_fn=mask_fn,
        columns=tuple(columns),
        dpu_cycles_per_row=dpu_cycles,
        xeon_ops_per_row=xeon_ops,
    )


def _refs_in(node: Any) -> List[Ref]:
    from .ir import _refs_of

    return _refs_of(node)


def _filter_terms(plan: LogicalPlan) -> int:
    terms = 0
    for fused in plan.fact_ranges:
        if fused.lo is not None or fused.hi is not None:
            terms += 1
    for _column, values in plan.fact_insets:
        terms += len(values)
    for node in plan.fact_or:
        for arg in node.args:
            terms += len(arg.values) if isinstance(arg, InList) else 1
    terms += len(plan.fact_complex)
    terms += len(plan.cross_eqs)
    return terms


def _build_key(plan: LogicalPlan, catalog: Catalog, ctx: _Lowering):
    """Lower GROUP BY -> (key, key_items, determinants, key_column)."""
    items: List[_KeyItem] = []
    determined: List[Tuple[Ref, int]] = []  # (ref, determinant item idx)
    key_refs: List[Ref] = []
    for ref in plan.group_refs:
        handled = False
        for index, existing in enumerate(key_refs):
            if existing == ref or _determines(existing, ref, catalog):
                handled = True
                break
        if not handled:
            # Drop previously added refs this one determines (keep the
            # determinant, not the dependent).
            key_refs = [r for r in key_refs
                        if not _determines(ref, r, catalog)]
            key_refs.append(ref)
    for ref in key_refs:
        if not ref.chain:
            stats = catalog.stats(plan.fact, ref.column)
            items.append(_KeyItem(
                ref=ref, kind="column", fact_column=ref.column, arr=None,
                lo=stats.lo, span=stats.hi - stats.lo + 1))
        else:
            fk, arr = ctx.lookup_array(ref)
            lo = int(arr.min()) if len(arr) else 0
            hi = int(arr.max()) if len(arr) else 0
            items.append(_KeyItem(
                ref=ref, kind="lookup", fact_column=fk, arr=arr,
                lo=lo, span=hi - lo + 1))

    if not items:
        # Scalar aggregate: constant key over the first streamed input.
        anchor = None
        for agg in plan.select_items:
            for ref in _refs_in(agg[0]):
                anchor = ref.column if not ref.chain else ref.chain[0][0]
                break
            if anchor:
                break
        if anchor is None:
            raise PlanError("query reads no columns", query=plan.text,
                            clause="select")
        key = GroupKey(
            fn=lambda c: np.zeros(len(c[anchor]), dtype=np.int64),
            columns=(anchor,),
            cycles_per_row=0.0,
            name="const",
        )
        return key, items, None

    if len(items) == 1 and items[0].kind == "column":
        return items[0].fact_column, items, items[0].fact_column

    for index, item in enumerate(items):
        multiplier = 1
        for later in items[index + 1:]:
            multiplier *= later.span
        item.multiplier = multiplier

    lookup_count = sum(1 for item in items if item.kind == "lookup")
    cycles = 2.0 * lookup_count + max(0, len(items) - 1) * 1.0
    columns = tuple(dict.fromkeys(item.fact_column for item in items))
    captured = [(item.fact_column, item.kind, item.arr, item.lo,
                 item.multiplier) for item in items]

    def key_fn(c, captured=captured):
        acc = None
        for fact_column, kind, arr, lo, multiplier in captured:
            streamed = c[fact_column].astype(np.int64)
            if kind == "lookup":
                value = arr[streamed].astype(np.int64)
            else:
                value = streamed
            term = (value - lo) * multiplier
            acc = term if acc is None else acc + term
        return acc

    name = "k_" + "_".join(item.ref.column for item in items)
    key = GroupKey(fn=key_fn, columns=columns, cycles_per_row=cycles,
                   name=name)
    return key, items, None


def _build_aggs(plan: LogicalPlan, ctx: _Lowering):
    """Aggregate slots (deduped across select items; avg -> sum+count)
    and the per-select output specs."""
    slots: List[AggSpec] = []
    slot_index: Dict[str, int] = {}

    def add_slot(call: AggCall) -> int:
        repr_key = sql_repr(call)
        if repr_key in slot_index:
            return slot_index[repr_key]
        if call.fn == "count":
            spec = AggSpec("count")
        elif isinstance(call.arg, Ref) and not call.arg.chain:
            spec = AggSpec(call.fn, column=call.arg.column)
        else:
            fn, columns = ctx.scalar_fn(call.arg)
            lookups, ops = ctx.expr_costs(call.arg)
            spec = AggSpec(
                call.fn,
                expr=fn,
                expr_columns=tuple(columns),
                expr_cycles_per_row=2.0 * lookups + max(2.0, float(ops)),
            )
        slot_index[repr_key] = len(slots)
        slots.append(spec)
        return slot_index[repr_key]

    def agg_value_fn(node: Any) -> Callable:
        """Compile select-item arithmetic over aggregate slots."""
        if isinstance(node, AggCall):
            if node.fn == "avg":
                sum_slot = add_slot(AggCall("sum", node.arg))
                count_slot = add_slot(AggCall("count", None))
                return lambda slots_: (
                    slots_[sum_slot] / slots_[count_slot]
                    if slots_[count_slot] else 0.0)
            index = add_slot(node)
            return lambda slots_: slots_[index]
        if isinstance(node, Lit):
            return lambda slots_: node.value
        if isinstance(node, Arith):
            left, right = agg_value_fn(node.left), agg_value_fn(node.right)
            op = node.op
            if op == "+":
                return lambda slots_: left(slots_) + right(slots_)
            if op == "-":
                return lambda slots_: left(slots_) - right(slots_)
            if op == "*":
                return lambda slots_: left(slots_) * right(slots_)

            def divide(slots_):
                denominator = right(slots_)
                return left(slots_) / denominator if denominator else 0.0
            return divide
        raise PlanError(
            f"unsupported aggregate select expression {sql_repr(node)}",
            query=plan.text, clause="select")

    return slots, agg_value_fn


def lower_plan(plan: LogicalPlan, catalog: Catalog) -> CompiledQuery:
    """Lower an optimized :class:`LogicalPlan` to a
    :class:`CompiledQuery`, making the cost-based physical choices."""
    ctx = _Lowering(plan, catalog)
    row_filter = _build_row_filter(plan, catalog, ctx)
    key, key_items, key_column = _build_key(plan, catalog, ctx)
    slots, agg_value_fn = _build_aggs(plan, ctx)

    # -- output specs ---------------------------------------------------
    from .ir import _contains_agg

    output_fns: List[Callable] = []
    for bound, _alias in plan.select_items:
        if _contains_agg(bound):
            fn = agg_value_fn(bound)
            output_fns.append(
                lambda vals, slots_, fn=fn: fn(slots_))
            continue
        ref = bound
        matched = False
        for index, item in enumerate(key_items):
            if item.ref == ref:
                output_fns.append(
                    lambda vals, slots_, index=index: vals[index])
                matched = True
                break
        if matched:
            continue
        for index, item in enumerate(key_items):
            if _determines(item.ref, ref, catalog):
                if not item.ref.chain:
                    arr = _compose_from(catalog, ref.chain, ref.column, 0)
                else:
                    arr = _compose_from(catalog, ref.chain, ref.column,
                                        len(item.ref.chain) - 1)
                output_fns.append(
                    lambda vals, slots_, arr=arr, index=index:
                    int(arr[vals[index]]))
                matched = True
                break
        if not matched:
            raise PlanError(
                f"select column {sql_repr(ref)} is neither grouped nor "
                "determined by the group key", query=plan.text,
                clause="select")

    if not slots:
        raise PlanError("query computes no aggregates (only aggregate "
                        "queries are supported)", query=plan.text,
                        clause="select")

    # -- ORDER BY -> output indices -------------------------------------
    select_reprs = [sql_repr(bound) for bound, _alias in plan.select_items]
    sort_specs: List[Tuple[int, bool]] = []
    for expr, desc in plan.order_by:
        repr_key = sql_repr(expr)
        if repr_key not in select_reprs:
            raise PlanError(
                f"ORDER BY expression {repr_key} is not in the select "
                "list", query=plan.text, clause="order by")
        sort_specs.append((select_reprs.index(repr_key), desc))

    # -- finish ---------------------------------------------------------
    decode_items = [(item.lo, item.multiplier) for item in key_items]
    single_column_key = key_column is not None
    limit = plan.limit

    def finish(groups: GroupTable) -> Tuple:
        rows = []
        for key_value in sorted(groups):
            slots_ = groups[key_value]
            if single_column_key:
                vals = [int(key_value)]
            elif decode_items:
                vals = []
                remaining = int(key_value)
                for lo, multiplier in decode_items:
                    quotient, remaining = divmod(remaining, multiplier)
                    vals.append(quotient + lo)
            else:
                vals = []
            rows.append(tuple(fn(vals, slots_) for fn in output_fns))
        if sort_specs:
            rows.sort(key=lambda row: tuple(
                [-row[index] if desc else row[index]
                 for index, desc in sort_specs] + list(row)))
        if limit is not None:
            rows = rows[:limit]
        return tuple(rows)

    # -- budgets --------------------------------------------------------
    fact_columns = catalog.tables[plan.fact]
    needed = _needed_columns(
        key, slots,
        row_filter if isinstance(row_filter, RowFilter) else (
            RowFilter.from_predicate(row_filter)
            if row_filter is not None else None))
    rows = catalog.num_rows(plan.fact)
    if isinstance(key, GroupKey):
        key_values = key.fn({name: fact_columns[name]
                             for name in key.columns})
    else:
        key_values = fact_columns[key]
    ndv = int(len(np.unique(key_values))) if rows else 1
    record_bytes = 8 + 8 * len(slots)
    partition_plan = plan_partitioning(ndv, record_bytes, DmemBudget())
    broadcast_bytes = sum(arr.nbytes for _name, arr in ctx.broadcasts)
    if partition_plan.partitions_needed > 1:
        if isinstance(key, GroupKey):
            raise PlanError(
                f"computed group key needs {partition_plan.partitions_needed}"
                " hardware partitions, which the DMS partitioner cannot "
                "drive", query=plan.text, clause="group by")
        if broadcast_bytes > _HW_BROADCAST_LIMIT:
            raise PlanError(
                f"broadcast footprint {broadcast_bytes}B exceeds the "
                f"{_HW_BROADCAST_LIMIT}B hardware-partitioned budget",
                query=plan.text, clause="broadcast footprint")
    elif broadcast_bytes >= _LOW_NDV_STREAM_BYTES - 4096:
        raise PlanError(
            f"broadcast footprint {broadcast_bytes}B leaves no streaming "
            "DMEM", query=plan.text, clause="broadcast footprint")

    # -- cost model: offload decision -----------------------------------
    nbytes = sum(fact_columns[name].nbytes for name in needed)
    if row_filter is None:
        filter_cycles = 0.0
    elif isinstance(row_filter, RowFilter):
        filter_cycles = row_filter.dpu_cycles_per_row
    else:
        filter_cycles = row_filter.dpu_cycles_per_row()
    key_cycles = key.cycles_per_row if isinstance(key, GroupKey) else 2.0
    agg_cycles = AGG_CYCLES_PER_ROW + sum(
        spec.expr_cycles_per_row for spec in slots)
    cycles_per_row = filter_cycles + key_cycles + agg_cycles
    dpu_config = DPUConfig()
    dpu_seconds = max(
        rows * cycles_per_row / dpu_config.num_cores,
        nbytes / dpu_config.ddr_peak_bytes_per_cycle,
    ) / dpu_config.clock_hz

    groupby_flag = bool(plan.group_refs)
    plan_dict: Dict[str, Any] = {
        "query": plan.name,
        "fact": plan.fact,
        "needed_columns": list(needed),
        "filter_terms": _filter_terms(plan),
        "join_probes": ctx.num_probes + ctx.num_lookups,
        "groupby": groupby_flag,
        "ndv": ndv,
        "record_bytes": record_bytes,
        "partitions_needed": partition_plan.partitions_needed,
        "broadcast_bytes": int(broadcast_bytes),
        "broadcasts": [
            {"name": name, "nbytes": int(arr.nbytes)}
            for name, arr in ctx.broadcasts
        ],
        "key": key if isinstance(key, str) else {
            "kind": "const" if not key_items else "computed",
            "name": key.name,
            "columns": list(key.columns),
            "cycles_per_row": key.cycles_per_row,
        },
        "aggregates": [spec.name for spec in slots],
        "filter_cycles_per_row": round(filter_cycles, 6),
        "cycles_per_row": round(cycles_per_row, 6),
    }

    compiled = CompiledQuery(
        name=plan.name,
        sql=plan.text,
        fact=plan.fact,
        key=key,
        key_column=key_column,
        aggs=slots,
        row_filter=row_filter,
        broadcasts=ctx.broadcasts,
        needed_columns=list(needed),
        finish=finish,
        plan=plan_dict,
        record_bytes=record_bytes,
        logical=plan,
        catalog_version=catalog.version,
    )

    xeon_seconds = DbmsCostModel(XeonModel()).plan_seconds(
        [compiled.scan_shape(rows, nbytes)])
    plan_dict["offload"] = {
        "rows": rows,
        "nbytes": int(nbytes),
        "dpu_seconds": dpu_seconds,
        "xeon_seconds": xeon_seconds,
        "choice": "dpu" if dpu_seconds < xeon_seconds else "xeon",
    }
    plan_dict["exchange"] = _plan_exchange(
        compiled, rows, ndv, fact_columns, needed)
    plan_dict["logical"] = plan.describe()
    return compiled


def _plan_exchange(compiled: CompiledQuery, rows: int, ndv: int,
                   fact_columns: Dict[str, np.ndarray],
                   needed: Sequence[str]) -> Dict[str, Any]:
    """Pick all-to-all shuffle vs pre-aggregate exchange at the target
    cluster width, priced by :class:`ShuffleRackModel`."""
    from ...cluster.shuffle import ShuffleRackModel

    row_bytes = sum(fact_columns[name].dtype.itemsize for name in needed)
    groups_bytes = max(64, ndv * compiled.record_bytes)
    pre_model = ShuffleRackModel(
        total_rows=rows, record_bytes=row_bytes,
        result_bytes=groups_bytes, all_to_all=False)
    all_model = ShuffleRackModel(
        total_rows=rows, record_bytes=row_bytes,
        result_bytes=max(64, groups_bytes // _EXCHANGE_FANOUT),
        all_to_all=True)
    pre_cycles = pre_model.job_cycles(_EXCHANGE_FANOUT)
    all_cycles = all_model.job_cycles(_EXCHANGE_FANOUT)
    if compiled.key_column is None:
        choice = "pre_aggregate"
        reason = "computed group key cannot repartition by column"
    elif all_cycles < pre_cycles:
        choice = "all_to_all"
        reason = "all-to-all is cheaper at the target fan-out"
    else:
        choice = "pre_aggregate"
        reason = "partial-aggregate gather is cheaper than repartitioning"
    return {
        "fanout": _EXCHANGE_FANOUT,
        "row_bytes": row_bytes,
        "result_bytes_pre": groups_bytes,
        "result_bytes_all": max(64, groups_bytes // _EXCHANGE_FANOUT),
        "pre_aggregate_cycles": pre_cycles,
        "all_to_all_cycles": all_cycles,
        "choice": choice,
        "reason": reason,
    }
