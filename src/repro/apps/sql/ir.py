"""Logical IR for the SQL frontend (parser output -> optimized plan).

The compilation pipeline follows the TQP two-phase design documented
in ``docs/SQL.md``: **parsing** (:mod:`repro.apps.sql.frontend`)
produces the AST nodes defined here; **canonicalization + binding**
(:func:`compile_logical`) resolves every column against a
:class:`Catalog`, scales decimal literals onto the fixed-point
integer encodings, folds date/interval arithmetic and classifies
predicates; the **rewrite passes** then run predicate pushdown
(fact-table range fusion plus per-dimension semijoin folding),
projection pruning and join ordering by estimated cardinality. The
resulting :class:`LogicalPlan` is what the physical planner
(:mod:`repro.apps.sql.physical`) lowers onto the single-DPU operators
and cluster shuffle stages.

Everything here is host-side planning: no simulated cycles are spent
until the physical plan runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "AggCall",
    "Arith",
    "Case",
    "Catalog",
    "Cmp",
    "Col",
    "InList",
    "Like",
    "Lit",
    "Logic",
    "LogicalPlan",
    "PlanError",
    "RangeTest",
    "Ref",
    "SelectStmt",
    "compile_logical",
    "sql_repr",
]


class PlanError(Exception):
    """A structured compilation failure: which query, which clause.

    Raised for every unsupported construct *before* lowering begins,
    so callers never see a mid-lowering assertion.
    """

    def __init__(self, message: str, query: Optional[str] = None,
                 clause: Optional[str] = None) -> None:
        self.message = message
        self.query = query
        self.clause = clause
        parts = [message]
        if clause:
            parts.append(f"[clause: {clause}]")
        if query:
            snippet = " ".join(query.split())
            if len(snippet) > 120:
                snippet = snippet[:117] + "..."
            parts.append(f"in query: {snippet}")
        super().__init__(" ".join(parts))


# -- AST nodes (parser output) ------------------------------------------------
#
# Frozen dataclasses so they hash/compare structurally; ``sql_repr``
# renders a canonical id-free string used for aggregate-slot dedup,
# ORDER BY matching and the golden plan snapshots.


@dataclass(frozen=True)
class Col:
    name: str
    table: Optional[str] = None


@dataclass(frozen=True)
class Lit:
    value: Any


@dataclass(frozen=True)
class Interval:
    n: int
    unit: str  # day | month | year


@dataclass(frozen=True)
class Arith:
    op: str  # + - * /
    left: Any
    right: Any


@dataclass(frozen=True)
class Cmp:
    op: str  # = <> < <= > >=
    left: Any
    right: Any


@dataclass(frozen=True)
class RangeTest:
    expr: Any
    lo: Any
    hi: Any


@dataclass(frozen=True)
class InList:
    expr: Any
    values: Tuple


@dataclass(frozen=True)
class Like:
    expr: Any
    pattern: str


@dataclass(frozen=True)
class Logic:
    op: str  # and | or
    args: Tuple


@dataclass(frozen=True)
class Case:
    whens: Tuple  # ((cond, result), ...)
    default: Any


@dataclass(frozen=True)
class AggCall:
    fn: str  # sum | count | avg | min | max
    arg: Any  # None for count(*)


@dataclass(frozen=True)
class Ref:
    """A bound column: a chain of foreign-key hops from the fact
    table, then a column of the chain's last table. An empty chain is
    a fact-table column."""

    chain: Tuple[Tuple[str, str], ...]  # ((fk_col_on_prev, table), ...)
    column: str
    table: str


@dataclass
class SelectStmt:
    """Raw parse of one SELECT statement."""

    items: List[Tuple[Any, Optional[str]]]  # (expr, alias)
    tables: List[str]
    join_ons: List[Any]  # ON expressions from explicit JOINs
    where: Optional[Any]
    group_by: List[Any]
    order_by: List[Tuple[Any, bool]]  # (expr, desc)
    limit: Optional[int]
    text: str = ""


def sql_repr(node: Any) -> str:
    """Canonical, id-free rendering of an AST / bound node."""
    if isinstance(node, Col):
        return f"{node.table}.{node.name}" if node.table else node.name
    if isinstance(node, Ref):
        hops = "".join(f"{fk}->" for fk, _table in node.chain)
        return f"{hops}{node.column}"
    if isinstance(node, Lit):
        return repr(node.value)
    if isinstance(node, Interval):
        return f"interval {node.n} {node.unit}"
    if isinstance(node, Arith):
        return f"({sql_repr(node.left)} {node.op} {sql_repr(node.right)})"
    if isinstance(node, Cmp):
        return f"({sql_repr(node.left)} {node.op} {sql_repr(node.right)})"
    if isinstance(node, RangeTest):
        return (f"({sql_repr(node.expr)} between {sql_repr(node.lo)} "
                f"and {sql_repr(node.hi)})")
    if isinstance(node, InList):
        inner = ", ".join(sql_repr(value) for value in node.values)
        return f"({sql_repr(node.expr)} in ({inner}))"
    if isinstance(node, Like):
        return f"({sql_repr(node.expr)} like {node.pattern!r})"
    if isinstance(node, Logic):
        inner = f" {node.op} ".join(sql_repr(arg) for arg in node.args)
        return f"({inner})"
    if isinstance(node, Case):
        whens = " ".join(
            f"when {sql_repr(cond)} then {sql_repr(result)}"
            for cond, result in node.whens
        )
        return f"(case {whens} else {sql_repr(node.default)} end)"
    if isinstance(node, AggCall):
        arg = "*" if node.arg is None else sql_repr(node.arg)
        return f"{node.fn}({arg})"
    return repr(node)


# -- catalog ------------------------------------------------------------------


@dataclass
class ColumnStats:
    lo: int
    hi: int
    ndv: int


class Catalog:
    """Schema + statistics the binder and planner consult.

    ``tables`` holds the live column arrays (by reference — the
    physical plan's broadcast builders and finish gathers read them).
    ``pks`` marks dense ``arange`` primary keys (the join orientation
    rule: the pk side of an equi-join is the dimension).
    ``dictionaries`` map low-cardinality string columns to their code
    lists so string literals bind to codes. ``scales`` give fixed-point
    decimal scale (cents / integer percent). ``aliases`` map columns
    that exist only as names in query text (``n_name``) to the
    dictionary-coded key column that carries the same information.
    ``prefix_ranges`` support ``LIKE 'X%'`` on dictionary codes whose
    order groups the prefix contiguously.
    """

    def __init__(
        self,
        tables: Dict[str, Dict[str, np.ndarray]],
        pks: Optional[Dict[str, str]] = None,
        dictionaries: Optional[Dict[str, Sequence[str]]] = None,
        scales: Optional[Dict[str, int]] = None,
        aliases: Optional[Dict[str, Tuple[str, str, Sequence[str]]]] = None,
        prefix_ranges: Optional[Dict[str, Dict[str, Tuple[int, int]]]] = None,
    ) -> None:
        self.tables = tables
        self.pks = dict(pks or {})
        self.dictionaries = dict(dictionaries or {})
        self.scales = dict(scales or {})
        self.aliases = dict(aliases or {})
        self.prefix_ranges = dict(prefix_ranges or {})
        # Monotone data version: every mutation bumps it, so plan and
        # result caches keyed on (query, version) go stale instead of
        # serving answers computed against old data (see repro.serve).
        self.version = 0
        self._stats: Dict[Tuple[str, str], ColumnStats] = {}
        self._column_table: Dict[str, List[str]] = {}
        for table, columns in tables.items():
            for column in columns:
                self._column_table.setdefault(column, []).append(table)

    def bump_version(self) -> int:
        """Declare the underlying data changed (caches must miss).

        Also drops memoized column statistics — they were computed
        against the previous contents.
        """
        self.version += 1
        self._stats.clear()
        return self.version

    def update_column(self, table: str, name: str,
                      values: np.ndarray) -> int:
        """Replace one column's array and bump the catalog version.

        The serving layer's write path: a tenant "update" swaps the
        column in place and every cached plan/result keyed against the
        old version is invalidated on its next lookup.
        """
        columns = self.tables[table]
        if name not in columns:
            raise PlanError(f"unknown column {name!r} in {table!r}",
                            clause="update")
        if len(values) != self.num_rows(table):
            raise PlanError(
                f"update of {table}.{name} changes row count "
                f"({len(values)} vs {self.num_rows(table)})",
                clause="update")
        columns[name] = values
        return self.bump_version()

    def num_rows(self, table: str) -> int:
        columns = self.tables[table]
        return len(next(iter(columns.values())))

    def column(self, table: str, name: str) -> np.ndarray:
        return self.tables[table][name]

    def table_of(self, column: str, query: str = "") -> str:
        tables = self._column_table.get(column)
        if not tables:
            raise PlanError(f"unknown column {column!r}", query=query,
                            clause="column reference")
        if len(tables) > 1:
            raise PlanError(f"ambiguous column {column!r} (in "
                            f"{sorted(tables)})", query=query,
                            clause="column reference")
        return tables[0]

    def stats(self, table: str, column: str) -> ColumnStats:
        cache_key = (table, column)
        if cache_key not in self._stats:
            values = self.tables[table][column]
            if len(values) == 0:
                self._stats[cache_key] = ColumnStats(0, 0, 1)
            else:
                self._stats[cache_key] = ColumnStats(
                    lo=int(values.min()), hi=int(values.max()),
                    ndv=max(1, len(np.unique(values))),
                )
        return self._stats[cache_key]

    def scale(self, column: str) -> int:
        return self.scales.get(column, 1)

    def encode(self, column: str, value: str, query: str = "") -> int:
        dictionary = self.dictionaries.get(column)
        if dictionary is None:
            raise PlanError(
                f"string literal compared with non-dictionary column "
                f"{column!r}", query=query, clause="string literal")
        try:
            return list(dictionary).index(value)
        except ValueError:
            raise PlanError(
                f"value {value!r} not in the dictionary of {column!r}",
                query=query, clause="string literal") from None

    def prefix_range(self, column: str, prefix: str,
                     query: str = "") -> Tuple[int, int]:
        ranges = self.prefix_ranges.get(column, {})
        if prefix not in ranges:
            raise PlanError(
                f"LIKE prefix {prefix!r} has no code range on {column!r}",
                query=query, clause="like")
        return ranges[prefix]

    def is_pk(self, table: str, column: str) -> bool:
        return self.pks.get(table) == column


# -- bound conjunct classification --------------------------------------------


@dataclass
class FactRange:
    """Fused ``lo <= column <= hi`` on a fact column (FILT-able)."""

    column: str
    lo: Optional[int]
    hi: Optional[int]


@dataclass
class LogicalPlan:
    """The optimized logical plan the physical planner lowers."""

    name: str
    text: str
    fact: str
    tables: List[str]
    chains: Dict[str, Tuple[Tuple[str, str], ...]]
    fact_ranges: List[FactRange]  # fused, first-occurrence order
    fact_insets: List[Tuple[str, Tuple[int, ...]]]
    fact_or: List[Any]  # OR trees of plain fact ranges
    fact_complex: List[Any]  # col-vs-col comparisons on fact columns
    dim_conjuncts: Dict[str, List[Any]]  # dim table -> bound conjuncts
    cross_eqs: List[Tuple[Ref, Ref]]
    group_refs: List[Ref]
    select_items: List[Tuple[Any, Optional[str]]]  # bound
    order_by: List[Tuple[Any, bool]]  # bound
    limit: Optional[int]
    join_order: List[Dict[str, Any]] = field(default_factory=list)
    needed_fact_columns: List[str] = field(default_factory=list)

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly plan summary (feeds the golden snapshots)."""
        return {
            "fact": self.fact,
            "tables": list(self.tables),
            "chains": {
                table: [[fk, hop] for fk, hop in chain]
                for table, chain in self.chains.items()
            },
            "fact_ranges": [
                {"column": r.column, "lo": r.lo, "hi": r.hi}
                for r in self.fact_ranges
            ],
            "fact_insets": [
                {"column": column, "values": list(values)}
                for column, values in self.fact_insets
            ],
            "fact_or": [sql_repr(node) for node in self.fact_or],
            "fact_complex": [sql_repr(node) for node in self.fact_complex],
            "dim_conjuncts": {
                table: [sql_repr(node) for node in nodes]
                for table, nodes in sorted(self.dim_conjuncts.items())
            },
            "cross_eqs": [
                [sql_repr(a), sql_repr(b)] for a, b in self.cross_eqs
            ],
            "group_by": [sql_repr(ref) for ref in self.group_refs],
            "select": [sql_repr(expr) for expr, _alias in self.select_items],
            "order_by": [
                [sql_repr(expr), desc] for expr, desc in self.order_by
            ],
            "limit": self.limit,
            "join_order": self.join_order,
            "needed_fact_columns": list(self.needed_fact_columns),
        }


class _Binder:
    """Resolves an AST against a catalog into bound nodes."""

    def __init__(self, catalog: Catalog, tables: List[str], fact: str,
                 chains: Dict[str, Tuple[Tuple[str, str], ...]],
                 text: str) -> None:
        self.catalog = catalog
        self.tables = tables
        self.fact = fact
        self.chains = chains
        self.text = text

    def resolve_column(self, col: Col) -> Ref:
        catalog = self.catalog
        name, table = col.name, col.table
        if name in catalog.aliases:
            alias_table, alias_column, _dictionary = catalog.aliases[name]
            table, name = alias_table, alias_column
        if table is None:
            table = catalog.table_of(name, self.text)
        elif table not in catalog.tables:
            raise PlanError(f"unknown table {table!r}", query=self.text,
                            clause="column reference")
        if table not in self.chains:
            raise PlanError(
                f"column {name!r} belongs to {table!r}, which is not "
                "joined into the query", query=self.text, clause="from")
        if name not in catalog.tables[table]:
            raise PlanError(f"unknown column {name!r} on {table!r}",
                            query=self.text, clause="column reference")
        return Ref(chain=self.chains[table], column=name, table=table)

    def scale_of(self, node: Any) -> int:
        if isinstance(node, Ref):
            return self.catalog.scale(node.column)
        if isinstance(node, Arith):
            left, right = self.scale_of(node.left), self.scale_of(node.right)
            return max(left, right)
        return 1

    def scale_literal(self, lit: Lit, scale: int) -> Lit:
        value = lit.value
        if isinstance(value, str):
            return lit
        if scale > 1:
            return Lit(int(round(value * scale)))
        if isinstance(value, float) and value.is_integer():
            return Lit(int(value))
        return lit

    def bind(self, node: Any) -> Any:
        if isinstance(node, Col):
            return self.resolve_column(node)
        if isinstance(node, Lit):
            return node
        if isinstance(node, Interval):
            raise PlanError("interval outside date arithmetic",
                            query=self.text, clause="interval")
        if isinstance(node, Arith):
            left, right = self.bind(node.left), self.bind(node.right)
            if isinstance(left, Lit) and isinstance(right, Lit):
                return _fold_arith(node.op, left, right, self.text)
            if isinstance(left, Lit):
                left = self.scale_literal(left, self.scale_of(right))
            elif isinstance(right, Lit):
                right = self.scale_literal(right, self.scale_of(left))
            return Arith(node.op, left, right)
        if isinstance(node, Cmp):
            left, right = self.bind(node.left), self.bind(node.right)
            if isinstance(left, Lit) and not isinstance(right, Lit):
                left, right = right, left
                flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}
                node = Cmp(flip.get(node.op, node.op), None, None)
            if isinstance(right, Lit):
                right = self._bind_comparison_literal(left, right)
            return Cmp(node.op, left, right)
        if isinstance(node, RangeTest):
            expr = self.bind(node.expr)
            lo = self._bind_comparison_literal(expr, self.bind(node.lo))
            hi = self._bind_comparison_literal(expr, self.bind(node.hi))
            return RangeTest(expr, lo, hi)
        if isinstance(node, InList):
            expr = self.bind(node.expr)
            values = tuple(
                self._bind_comparison_literal(expr, self.bind(value))
                for value in node.values
            )
            return InList(expr, values)
        if isinstance(node, Like):
            expr = self.bind(node.expr)
            if not isinstance(expr, Ref):
                raise PlanError("LIKE needs a plain column", query=self.text,
                                clause="like")
            pattern = node.pattern
            if not pattern.endswith("%") or "%" in pattern[:-1]:
                raise PlanError(
                    f"only prefix LIKE patterns are supported: {pattern!r}",
                    query=self.text, clause="like")
            lo, hi = self.catalog.prefix_range(expr.column, pattern[:-1],
                                              self.text)
            return RangeTest(expr, Lit(lo), Lit(hi))
        if isinstance(node, Logic):
            return Logic(node.op, tuple(self.bind(arg) for arg in node.args))
        if isinstance(node, Case):
            whens = tuple(
                (self.bind(cond), self.bind(result))
                for cond, result in node.whens
            )
            return Case(whens, self.bind(node.default))
        if isinstance(node, AggCall):
            if node.arg is None:
                return node
            arg = self.bind(node.arg)
            if _contains_agg(arg):
                raise PlanError("nested aggregates", query=self.text,
                                clause="select")
            return AggCall(node.fn, arg)
        raise PlanError(f"unsupported expression {node!r}", query=self.text,
                        clause="expression")

    def _bind_comparison_literal(self, expr: Any, lit: Any) -> Any:
        if not isinstance(lit, Lit):
            return lit
        value = lit.value
        if isinstance(value, str):
            if not isinstance(expr, Ref):
                raise PlanError("string literal compared with an expression",
                                query=self.text, clause="string literal")
            # Aliased columns already resolved to codes by resolve_column
            # when the alias carried a dictionary of its own.
            column = expr.column
            original = self._alias_dictionary(column)
            if original is not None:
                try:
                    return Lit(list(original).index(value))
                except ValueError:
                    raise PlanError(
                        f"value {value!r} not in the dictionary of "
                        f"{column!r}", query=self.text,
                        clause="string literal") from None
            return Lit(self.catalog.encode(column, value, self.text))
        return self.scale_literal(lit, self.scale_of(expr))

    def _alias_dictionary(self, column: str) -> Optional[Sequence[str]]:
        for _alias, (_table, target, dictionary) in \
                self.catalog.aliases.items():
            if target == column:
                return dictionary
        return None


def _contains_agg(node: Any) -> bool:
    if isinstance(node, AggCall):
        return True
    if isinstance(node, Arith):
        return _contains_agg(node.left) or _contains_agg(node.right)
    if isinstance(node, Case):
        return any(_contains_agg(cond) or _contains_agg(result)
                   for cond, result in node.whens) \
            or _contains_agg(node.default)
    return False


def _fold_arith(op: str, left: Lit, right: Lit, text: str) -> Lit:
    try:
        if op == "+":
            return Lit(left.value + right.value)
        if op == "-":
            return Lit(left.value - right.value)
        if op == "*":
            return Lit(left.value * right.value)
        if op == "/":
            return Lit(left.value / right.value)
    except TypeError:
        pass
    raise PlanError(f"cannot fold literal arithmetic {op!r}", query=text,
                    clause="expression")


def fold_date_arith(node: Any, text: str = "") -> Any:
    """Fold ``date 'Y-M-D' +/- interval 'n' unit`` into day codes.

    The parser emits dates as :class:`Lit` day codes already; this
    handles the interval offsets with calendar math.
    """
    import datetime

    from ...workloads.tpch import date_code  # noqa: F401 (epoch anchor)

    epoch = datetime.date(1992, 1, 1)
    if isinstance(node, Arith) and isinstance(node.right, Interval):
        base = fold_date_arith(node.left, text)
        if not isinstance(base, Lit) or not isinstance(base.value, int):
            raise PlanError("interval arithmetic needs a date literal",
                            query=text, clause="interval")
        interval = node.right
        sign = 1 if node.op == "+" else -1
        if node.op not in ("+", "-"):
            raise PlanError("interval arithmetic supports only + and -",
                            query=text, clause="interval")
        day = epoch + datetime.timedelta(days=base.value)
        if interval.unit == "day":
            day = day + datetime.timedelta(days=sign * interval.n)
        else:
            months = day.year * 12 + (day.month - 1) \
                + sign * interval.n * (12 if interval.unit == "year" else 1)
            year, month = divmod(months, 12)
            day = datetime.date(year, month + 1, day.day)
        return Lit((day - epoch).days)
    return node


# -- logical compilation ------------------------------------------------------


def _flatten_and(node: Any) -> List[Any]:
    if isinstance(node, Logic) and node.op == "and":
        out: List[Any] = []
        for arg in node.args:
            out.extend(_flatten_and(arg))
        return out
    return [node]


def _column_sides(node: Any) -> Optional[Tuple[Col, Col]]:
    """A raw equi-join conjunct: ``col = col`` across two tables."""
    if isinstance(node, Cmp) and node.op == "=" \
            and isinstance(node.left, Col) and isinstance(node.right, Col):
        return node.left, node.right
    return None


def _refs_of(node: Any) -> List[Ref]:
    if isinstance(node, Ref):
        return [node]
    out: List[Ref] = []
    if isinstance(node, (Arith, Cmp)):
        out.extend(_refs_of(node.left))
        out.extend(_refs_of(node.right))
    elif isinstance(node, RangeTest):
        out.extend(_refs_of(node.expr))
        out.extend(_refs_of(node.lo))
        out.extend(_refs_of(node.hi))
    elif isinstance(node, InList):
        out.extend(_refs_of(node.expr))
    elif isinstance(node, Logic):
        for arg in node.args:
            out.extend(_refs_of(arg))
    elif isinstance(node, Case):
        for cond, result in node.whens:
            out.extend(_refs_of(cond))
            out.extend(_refs_of(result))
        out.extend(_refs_of(node.default))
    elif isinstance(node, AggCall) and node.arg is not None:
        out.extend(_refs_of(node.arg))
    return out


def _range_selectivity(catalog: Catalog, table: str, column: str,
                       lo: Optional[int], hi: Optional[int]) -> float:
    stats = catalog.stats(table, column)
    span = max(1, stats.hi - stats.lo + 1)
    lo = stats.lo if lo is None else max(lo, stats.lo)
    hi = stats.hi if hi is None else min(hi, stats.hi)
    if hi < lo:
        return 0.0
    return min(1.0, (hi - lo + 1) / span)


def _conjunct_selectivity(catalog: Catalog, node: Any) -> float:
    """Uniform-distribution selectivity estimate for one conjunct."""
    if isinstance(node, Cmp) and isinstance(node.right, Lit) \
            and isinstance(node.left, Ref):
        ref, value = node.left, node.right.value
        stats = catalog.stats(ref.table, ref.column)
        if node.op == "=":
            return 1.0 / stats.ndv
        if node.op in ("<", "<="):
            hi = value - 1 if node.op == "<" else value
            return _range_selectivity(catalog, ref.table, ref.column,
                                      None, hi)
        if node.op in (">", ">="):
            lo = value + 1 if node.op == ">" else value
            return _range_selectivity(catalog, ref.table, ref.column,
                                      lo, None)
        return 0.5
    if isinstance(node, RangeTest) and isinstance(node.expr, Ref) \
            and isinstance(node.lo, Lit) and isinstance(node.hi, Lit):
        ref = node.expr
        return _range_selectivity(catalog, ref.table, ref.column,
                                  node.lo.value, node.hi.value)
    if isinstance(node, InList) and isinstance(node.expr, Ref):
        stats = catalog.stats(node.expr.table, node.expr.column)
        return min(1.0, len(node.values) / stats.ndv)
    return 0.5


def compile_logical(stmt: SelectStmt, catalog: Catalog,
                    name: str = "query") -> LogicalPlan:
    """Bind + rewrite one parsed SELECT into a :class:`LogicalPlan`."""
    text = stmt.text
    for table in stmt.tables:
        if table not in catalog.tables:
            raise PlanError(f"unknown table {table!r}", query=text,
                            clause="from")

    # 1. Split WHERE into conjuncts; pull out raw equi-join edges.
    conjuncts: List[Any] = []
    if stmt.where is not None:
        conjuncts.extend(_flatten_and(stmt.where))
    for on_expr in stmt.join_ons:
        conjuncts.extend(_flatten_and(on_expr))

    raw_edges: List[Tuple[Col, Col]] = []
    filters: List[Any] = []
    for conjunct in conjuncts:
        sides = _column_sides(conjunct)
        if sides is None:
            filters.append(conjunct)
            continue
        left_table = sides[0].table or catalog.table_of(sides[0].name, text)
        right_table = sides[1].table or catalog.table_of(sides[1].name, text)
        if left_table == right_table:
            filters.append(conjunct)
            continue
        left_pk = catalog.is_pk(left_table, sides[0].name)
        right_pk = catalog.is_pk(right_table, sides[1].name)
        if left_pk == right_pk:
            # Neither (or both) side is a dense pk: not a star edge —
            # keep as a filter (cross-chain equality, e.g. Q5's
            # c_nationkey = s_nationkey).
            filters.append(conjunct)
            continue
        raw_edges.append(sides if right_pk else (sides[1], sides[0]))

    # 2. Orient the join tree: every edge points source.fk -> dim.pk;
    #    the fact is the unique table that is never a dim.
    edges: Dict[str, Tuple[str, str, str]] = {}  # dim -> (src, fk, pk)
    dims = set()
    for fk_col, pk_col in raw_edges:
        src = fk_col.table or catalog.table_of(fk_col.name, text)
        dim = pk_col.table or catalog.table_of(pk_col.name, text)
        if dim in edges:
            raise PlanError(f"table {dim!r} joined twice", query=text,
                            clause="join")
        edges[dim] = (src, fk_col.name, pk_col.name)
        dims.add(dim)
    fact_candidates = [table for table in stmt.tables if table not in dims]
    if len(stmt.tables) == 1:
        fact = stmt.tables[0]
    elif len(fact_candidates) != 1:
        raise PlanError(
            f"cannot identify a unique fact table (candidates: "
            f"{sorted(fact_candidates)})", query=text, clause="join")
    else:
        fact = fact_candidates[0]

    # 3. Chains: BFS from the fact through oriented edges.
    chains: Dict[str, Tuple[Tuple[str, str], ...]] = {fact: ()}
    changed = True
    while changed:
        changed = False
        for dim, (src, fk, _pk) in edges.items():
            if dim not in chains and src in chains:
                chains[dim] = chains[src] + ((fk, dim),)
                changed = True
    for table in stmt.tables:
        if table not in chains:
            raise PlanError(
                f"table {table!r} has no join path to the fact table "
                f"{fact!r}", query=text, clause="join")

    binder = _Binder(catalog, stmt.tables, fact, chains, text)

    # 4. Bind and classify the filter conjuncts.
    fact_ranges: List[FactRange] = []
    range_index: Dict[str, int] = {}
    fact_insets: List[Tuple[str, Tuple[int, ...]]] = []
    fact_or: List[Any] = []
    fact_complex: List[Any] = []
    dim_conjuncts: Dict[str, List[Any]] = {}
    cross_eqs: List[Tuple[Ref, Ref]] = []

    def add_range(column: str, lo: Optional[int], hi: Optional[int]) -> None:
        if column not in range_index:
            range_index[column] = len(fact_ranges)
            fact_ranges.append(FactRange(column, lo, hi))
            return
        fused = fact_ranges[range_index[column]]
        if lo is not None:
            fused.lo = lo if fused.lo is None else max(fused.lo, lo)
        if hi is not None:
            fused.hi = hi if fused.hi is None else min(fused.hi, hi)

    def is_plain_fact_range(node: Any) -> bool:
        if isinstance(node, Cmp) and isinstance(node.left, Ref) \
                and not node.left.chain and isinstance(node.right, Lit):
            return node.op in ("=", "<", "<=", ">", ">=")
        if isinstance(node, RangeTest) and isinstance(node.expr, Ref) \
                and not node.expr.chain:
            return isinstance(node.lo, Lit) and isinstance(node.hi, Lit)
        if isinstance(node, InList):
            return isinstance(node.expr, Ref) and not node.expr.chain
        return False

    for raw in filters:
        bound = binder.bind(raw)
        refs = _refs_of(bound)
        if not refs:
            raise PlanError("constant predicate", query=text, clause="where")
        ref_tables = {ref.table for ref in refs}
        if ref_tables == {fact}:
            if isinstance(bound, Cmp) and isinstance(bound.right, Lit):
                ref = bound.left
                if isinstance(ref, Ref):
                    value = bound.right.value
                    if bound.op == "=":
                        add_range(ref.column, value, value)
                    elif bound.op == "<=":
                        add_range(ref.column, None, value)
                    elif bound.op == "<":
                        add_range(ref.column, None, value - 1)
                    elif bound.op == ">=":
                        add_range(ref.column, value, None)
                    elif bound.op == ">":
                        add_range(ref.column, value + 1, None)
                    else:
                        raise PlanError(
                            "<> predicates are not FILT-able",
                            query=text, clause="where")
                    continue
            if isinstance(bound, RangeTest) and isinstance(bound.expr, Ref) \
                    and isinstance(bound.lo, Lit) \
                    and isinstance(bound.hi, Lit):
                add_range(bound.expr.column, bound.lo.value, bound.hi.value)
                continue
            if isinstance(bound, InList) and isinstance(bound.expr, Ref):
                values = tuple(value.value for value in bound.values
                               if isinstance(value, Lit))
                if len(values) == len(bound.values):
                    fact_insets.append((bound.expr.column, values))
                    continue
            if isinstance(bound, Logic) and bound.op == "or":
                if all(is_plain_fact_range(arg) for arg in bound.args):
                    fact_or.append(bound)
                    continue
                raise PlanError(
                    "OR is only supported over plain fact-column ranges",
                    query=text, clause="where")
            if isinstance(bound, Cmp) and isinstance(bound.left, Ref) \
                    and isinstance(bound.right, Ref):
                fact_complex.append(bound)
                continue
            raise PlanError(f"unsupported fact predicate "
                            f"{sql_repr(bound)}", query=text, clause="where")
        elif len(ref_tables) == 1:
            table = next(iter(ref_tables))
            dim_conjuncts.setdefault(table, []).append(bound)
        elif isinstance(bound, Cmp) and bound.op == "=" \
                and isinstance(bound.left, Ref) \
                and isinstance(bound.right, Ref):
            cross_eqs.append((bound.left, bound.right))
        else:
            raise PlanError(
                f"predicate spans multiple tables without an equi-join: "
                f"{sql_repr(bound)}", query=text, clause="where")

    # 5. Bind group by / select / order by.
    group_refs: List[Ref] = []
    for expr in stmt.group_by:
        bound = binder.bind(expr)
        if not isinstance(bound, Ref):
            raise PlanError("GROUP BY supports plain columns only",
                            query=text, clause="group by")
        group_refs.append(bound)

    select_items = [(binder.bind(expr), alias)
                    for expr, alias in stmt.items]
    for bound, _alias in select_items:
        if not _contains_agg(bound) and not isinstance(bound, Ref):
            raise PlanError(
                "non-aggregate select expressions must be plain columns",
                query=text, clause="select")

    order_by: List[Tuple[Any, bool]] = []
    for expr, desc in stmt.order_by:
        if isinstance(expr, Col) and expr.table is None:
            # Alias or positional reference resolves against the
            # select list first.
            alias_hit = None
            for item, alias in stmt.items:
                if alias == expr.name:
                    alias_hit = item
                    break
            if alias_hit is not None:
                order_by.append((binder.bind(alias_hit), desc))
                continue
        if isinstance(expr, Lit) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(stmt.items):
                raise PlanError(f"ORDER BY position {expr.value} out of "
                                "range", query=text, clause="order by")
            order_by.append((binder.bind(stmt.items[position][0]), desc))
            continue
        order_by.append((binder.bind(expr), desc))

    # 6. Join ordering by estimated cardinality: probe the most
    #    selective dimension first. Pure planning metadata — semijoin
    #    bitmaps commute — but the recorded order is the one the
    #    physical plan applies its probes in.
    fact_rows = catalog.num_rows(fact)
    selectivity_by_root: Dict[Tuple[str, str], float] = {}
    for table, nodes in dim_conjuncts.items():
        selectivity = 1.0
        for node in nodes:
            selectivity *= _conjunct_selectivity(catalog, node)
        chain = chains[table]
        root = chain[0]  # (fk_on_fact, first_dim)
        selectivity_by_root[root] = (
            selectivity_by_root.get(root, 1.0) * selectivity
        )
    join_order = []
    running = float(fact_rows)
    for root, selectivity in sorted(selectivity_by_root.items(),
                                    key=lambda item: item[1]):
        running *= selectivity
        join_order.append({
            "fact_fk": root[0],
            "dim": root[1],
            "selectivity": round(selectivity, 6),
            "est_rows_after": int(running),
        })

    # 7. Projection pruning: exactly the fact columns the lowered
    #    operator will stream (group key inputs, aggregate inputs,
    #    filter inputs — in that order, deduped).
    needed: List[str] = []

    def need_ref(ref: Ref) -> None:
        column = ref.chain[0][0] if ref.chain else ref.column
        if column not in needed:
            needed.append(column)

    for ref in group_refs:
        need_ref(ref)
    for bound, _alias in select_items:
        for ref in _refs_of(bound):
            need_ref(ref)
    for fused in fact_ranges:
        if fused.column not in needed:
            needed.append(fused.column)
    for column, _values in fact_insets:
        if column not in needed:
            needed.append(column)
    for node in fact_or + fact_complex:
        for ref in _refs_of(node):
            need_ref(ref)
    for table in dim_conjuncts:
        need_ref(Ref(chain=chains[table], column="", table=table))
    for left, right in cross_eqs:
        need_ref(left)
        need_ref(right)

    return LogicalPlan(
        name=name,
        text=text,
        fact=fact,
        tables=list(stmt.tables),
        chains=chains,
        fact_ranges=fact_ranges,
        fact_insets=fact_insets,
        fact_or=fact_or,
        fact_complex=fact_complex,
        dim_conjuncts=dim_conjuncts,
        cross_eqs=cross_eqs,
        group_refs=group_refs,
        select_items=select_items,
        order_by=order_by,
        limit=stmt.limit,
        join_order=join_order,
        needed_fact_columns=needed,
    )
