"""The DPU SQL processing engine (paper §5.3)."""

from .aggregate import (
    AggSpec,
    Broadcast,
    GroupKey,
    RowFilter,
    dpu_groupby,
    merge_groups,
    xeon_groupby,
)
from .costs import (
    AGG_CYCLES_PER_ROW,
    FILTER_CYCLES_PER_TUPLE,
    measure_agg_loop,
    measure_filter_loop,
)
from .engine import (
    DpuOpResult,
    QueryComparison,
    XeonOpResult,
    comparison_table,
    efficiency_gain,
)
from .expr import And, Between, Eq, Ge, InSet, Le, Or, Predicate
from .filter import dpu_filter, dpu_scan_project, xeon_filter
from .frontend import compile_query, load_query, parse_sql
from .ir import Catalog, LogicalPlan, PlanError, compile_logical
from .join import (
    bitmap_filter,
    broadcast_array,
    dpu_partitioned_join_count,
    key_bitmap,
    lookup_filter,
    xeon_join_count,
)
from .physical import CompiledQuery, lower_plan, tpch_catalog
from .planner import DmemBudget, PartitionPlan, plan_partitioning
from .sort import dpu_sort, xeon_sort
from .table import DpuTable, Table
from .topk import dpu_topk, xeon_topk
from .tpch_queries import TPCH_QUERIES, TpchQuery, load_tpch_on_dpu, run_query

__all__ = [
    "AGG_CYCLES_PER_ROW",
    "AggSpec",
    "And",
    "Between",
    "Broadcast",
    "Catalog",
    "CompiledQuery",
    "DmemBudget",
    "DpuOpResult",
    "DpuTable",
    "Eq",
    "FILTER_CYCLES_PER_TUPLE",
    "Ge",
    "GroupKey",
    "InSet",
    "Le",
    "LogicalPlan",
    "Or",
    "PartitionPlan",
    "PlanError",
    "Predicate",
    "QueryComparison",
    "RowFilter",
    "TPCH_QUERIES",
    "Table",
    "TpchQuery",
    "XeonOpResult",
    "bitmap_filter",
    "broadcast_array",
    "comparison_table",
    "compile_logical",
    "compile_query",
    "dpu_filter",
    "dpu_groupby",
    "dpu_partitioned_join_count",
    "dpu_scan_project",
    "dpu_sort",
    "dpu_topk",
    "efficiency_gain",
    "key_bitmap",
    "load_query",
    "load_tpch_on_dpu",
    "lookup_filter",
    "lower_plan",
    "measure_agg_loop",
    "measure_filter_loop",
    "merge_groups",
    "parse_sql",
    "plan_partitioning",
    "run_query",
    "tpch_catalog",
    "xeon_filter",
    "xeon_groupby",
    "xeon_join_count",
    "xeon_sort",
    "xeon_topk",
]
