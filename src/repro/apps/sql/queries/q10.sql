-- TPC-H Q10: returned item reporting
select
    c_custkey,
    sum(l_extendedprice * (1 - l_discount)) as revenue,
    c_nationkey
from
    customer,
    orders,
    lineitem
where
    c_custkey = o_custkey
    and l_orderkey = o_orderkey
    and o_orderdate >= date '1993-10-01'
    and o_orderdate < date '1993-10-01' + interval '3' month
    and l_returnflag = 'R'
group by
    c_custkey,
    c_nationkey
order by
    revenue desc,
    c_custkey
limit 20;
