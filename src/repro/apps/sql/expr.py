"""Predicate expressions for scan filters.

The dpCore accelerates range predicates with SETFL/SETFH + FILT — one
cycle per tuple per range term, accumulating into the bit-vector
register (paper §2.2). Predicates here are small trees of range terms
combined with AND/OR; each node knows:

* how to evaluate itself functionally on numpy columns,
* how many FILT passes the dpCore needs (its cycle cost),
* roughly how many scalar-equivalent x86 instructions it costs per
  row (AVX2 evaluates 8 rows per instruction; the baseline roofline
  uses this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .costs import FILTER_CYCLES_PER_TUPLE

__all__ = ["Predicate", "Between", "Eq", "Le", "Ge", "InSet", "And", "Or"]

# Combining two 64-row bitvector words costs one ALU op: ~1/64 cycle/row.
_COMBINE_CYCLES_PER_ROW = 1.0 / 64.0
# One AVX2 compare+mask op covers 8 rows; a range needs two compares.
_XEON_OPS_PER_RANGE_TERM = 2.0 / 8.0


class Predicate:
    """Base class: a boolean row predicate."""

    def mask(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def column_names(self) -> List[str]:
        raise NotImplementedError

    def filt_terms(self) -> int:
        """Number of FILT passes the dpCore evaluation needs."""
        raise NotImplementedError

    def dpu_cycles_per_row(self) -> float:
        terms = self.filt_terms()
        return terms * FILTER_CYCLES_PER_TUPLE + max(0, terms - 1) * (
            _COMBINE_CYCLES_PER_ROW
        )

    def xeon_ops_per_row(self) -> float:
        return self.filt_terms() * _XEON_OPS_PER_RANGE_TERM

    def __and__(self, other: "Predicate") -> "Predicate":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or([self, other])


@dataclass
class Between(Predicate):
    """``lo <= column <= hi`` — exactly one SETFL/SETFH/FILT pass."""

    column: str
    lo: float
    hi: float

    def mask(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        values = columns[self.column]
        return (values >= self.lo) & (values <= self.hi)

    def column_names(self) -> List[str]:
        return [self.column]

    def filt_terms(self) -> int:
        return 1


def Eq(column: str, value) -> Between:
    """Equality as a degenerate range (lo == hi)."""
    return Between(column, value, value)


def Le(column: str, hi) -> Between:
    """``column <= hi`` (lower bound at the type's floor)."""
    return Between(column, -(2**62), hi)


def Ge(column: str, lo) -> Between:
    """``column >= lo``."""
    return Between(column, lo, 2**62)


@dataclass
class InSet(Predicate):
    """``column IN (v1, v2, ...)`` — one FILT pass per member."""

    column: str
    values: Tuple

    def __init__(self, column: str, values: Sequence) -> None:
        self.column = column
        self.values = tuple(values)
        if not self.values:
            raise ValueError("InSet needs at least one value")

    def mask(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        values = columns[self.column]
        return np.isin(values, np.asarray(self.values))

    def column_names(self) -> List[str]:
        return [self.column]

    def filt_terms(self) -> int:
        return len(self.values)


@dataclass
class And(Predicate):
    children: List[Predicate]

    def mask(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        result = self.children[0].mask(columns)
        for child in self.children[1:]:
            result = result & child.mask(columns)
        return result

    def column_names(self) -> List[str]:
        names: List[str] = []
        for child in self.children:
            for name in child.column_names():
                if name not in names:
                    names.append(name)
        return names

    def filt_terms(self) -> int:
        return sum(child.filt_terms() for child in self.children)


@dataclass
class Or(Predicate):
    children: List[Predicate]

    def mask(self, columns: Dict[str, np.ndarray]) -> np.ndarray:
        result = self.children[0].mask(columns)
        for child in self.children[1:]:
            result = result | child.mask(columns)
        return result

    def column_names(self) -> List[str]:
        names: List[str] = []
        for child in self.children:
            for name in child.column_names():
                if name not in names:
                    names.append(name)
        return names

    def filt_terms(self) -> int:
        return sum(child.filt_terms() for child in self.children)
