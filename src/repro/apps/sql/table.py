"""Columnar tables for the SQL engine (paper §5.3).

Tables are column-major, the layout the DMS is built around: each
column is one contiguous numpy array. :class:`Table` is the host-side
object; :meth:`Table.to_dpu` copies the columns into DPU DDR and
returns a :class:`DpuTable` whose column references feed directly
into DMS descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...core.dpu import DPU

__all__ = ["Table", "DpuTable"]


@dataclass
class Table:
    """A named collection of equal-length columns."""

    name: str
    columns: Dict[str, np.ndarray]

    def __post_init__(self) -> None:
        lengths = {column: len(values) for column, values in self.columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged columns in {self.name!r}: {lengths}")

    @classmethod
    def from_arrays(cls, name: str, arrays: Dict[str, np.ndarray]) -> "Table":
        return cls(name=name, columns=dict(arrays))

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> List[str]:
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise KeyError(f"{self.name!r} has no column {name!r}")
        return self.columns[name]

    def nbytes(self, names: Optional[Sequence[str]] = None) -> int:
        names = names if names is not None else self.column_names
        return sum(self.columns[name].nbytes for name in names)

    def select(self, mask: np.ndarray, names: Optional[Sequence[str]] = None):
        """Host-side row filter (for building expected results)."""
        names = names if names is not None else self.column_names
        return Table(
            name=f"{self.name}_sel",
            columns={name: self.columns[name][mask] for name in names},
        )

    def to_dpu(self, dpu: DPU) -> "DpuTable":
        """Copy every column into DPU DDR."""
        addresses = {
            name: dpu.store_array(values) for name, values in self.columns.items()
        }
        return DpuTable(table=self, dpu=dpu, addresses=addresses)


@dataclass
class DpuTable:
    """A table resident in DPU DRAM."""

    table: Table
    dpu: DPU
    addresses: Dict[str, int]

    @property
    def name(self) -> str:
        return self.table.name

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    def column_ref(self, name: str) -> Tuple[int, np.dtype]:
        """(address, element dtype) — feeds DMS descriptors/streams."""
        values = self.table.column(name)
        return self.addresses[name], values.dtype

    def column_refs(self, names: Sequence[str]) -> List[Tuple[int, int]]:
        return [self.column_ref(name) for name in names]

    def nbytes(self, names: Optional[Sequence[str]] = None) -> int:
        return self.table.nbytes(names)
