"""dpCore cycle costs for SQL operator inner loops.

Every constant here is *derived from the ISA interpreter*: the
function next to each constant assembles the operator's inner loop,
runs it on :class:`~repro.core.dpcore.DpCoreInterpreter`, and returns
the measured cycles per tuple. Unit tests assert the constants match
the measurements, so if the core model changes, the operator costs
cannot silently drift.

The headline number is the paper's Figure 15: the BVLD/FILT filter
loop at ~1.65 cycles/tuple (482 Mtuples/s on one 800 MHz dpCore).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ...core.assembler import assemble
from ...core.dpcore import DpCoreInterpreter
from ...memory.dmem import Scratchpad

__all__ = [
    "FILTER_CYCLES_PER_TUPLE",
    "AGG_CYCLES_PER_ROW",
    "JOIN_BUILD_CYCLES_PER_ROW",
    "JOIN_PROBE_CYCLES_PER_ROW",
    "TOPK_CYCLES_PER_ROW",
    "TOPK_CYCLES_PER_HIT",
    "SW_PARTITION_CYCLES_PER_ROW_COL",
    "MERGE_CYCLES_PER_GROUP",
    "measure_filter_loop",
    "measure_agg_loop",
]

# Figure 15: one 4 B column filtered with FILT, 8x unrolled,
# dual-issued LW+FILT pairs: measured 1.60 cycles/tuple on the
# interpreter (~500 Mtuples/s at 800 MHz vs the paper's 482 at 1.65 —
# within 4%; EXPERIMENTS.md records the delta).
FILTER_CYCLES_PER_TUPLE = 1.60

# Hash group-by update: CRC32 hash (1) + masked index arithmetic (3) +
# bucket load (1) + aggregate add + store (2) + loop overhead —
# measured 9.0 cycles/row on the interpreter.
AGG_CYCLES_PER_ROW = 9.0

# Hash join build: hash + store key/payload + chain pointer.
JOIN_BUILD_CYCLES_PER_ROW = 8.0
# Probe: hash + load candidate + compare (+ occasional chain walk).
JOIN_PROBE_CYCLES_PER_ROW = 7.0

# Top-k scan: compare against the current threshold (1 load + 1
# compare + loop, dual-issued) ...
TOPK_CYCLES_PER_ROW = 2.0
# ... plus a binary-heap sift on the rare replacement.
TOPK_CYCLES_PER_HIT = 24.0

# Software partitioning: per row x column, copy the value into the
# partition's DMEM staging buffer (hash already computed once per
# row; copy is LW+SW dual-issued with address bumps).
SW_PARTITION_CYCLES_PER_ROW_COL = 2.5

# Final merge of per-core aggregates (ATE-shipped): per group, add
# counters and compare keys.
MERGE_CYCLES_PER_GROUP = 10.0


def _run_loop(source: str, dmem_words: int = 4096) -> DpCoreInterpreter:
    program = assemble(source)
    dmem = Scratchpad(core_id=0)
    interpreter = DpCoreInterpreter(program, dmem)
    return interpreter


@lru_cache(maxsize=None)
def measure_filter_loop(num_tuples: int = 2048) -> float:
    """Cycles/tuple of the Figure 15 filter loop, measured on the
    interpreter: 4 B loads + FILT, 4x unrolled, bitvector stores every
    64 tuples.

    The loop filters ``num_tuples`` values resident in DMEM (r3 walks
    the data, r4 is the end pointer, r5 the bitvector cursor).
    """
    if num_tuples % 64 != 0:
        raise ValueError("tuple count must be a multiple of 64")
    data_bytes = num_tuples * 4
    source = f"""
        li   r3, 0              # data cursor
        li   r4, {data_bytes}   # data end
        li   r5, {data_bytes}   # bitvector cursor
        li   r6, 100            # predicate bounds: 100..1000
        setfl r6
        li   r6, 1000
        setfh r6
    outer:
        li   r7, 8              # 8 x 8-unrolled = 64 tuples per word
    word:
        lw   r10, 0(r3)
        filt r11, r10
        lw   r12, 4(r3)
        filt r13, r12
        lw   r10, 8(r3)
        filt r11, r10
        lw   r12, 12(r3)
        filt r13, r12
        lw   r10, 16(r3)
        filt r11, r10
        lw   r12, 20(r3)
        filt r13, r12
        lw   r10, 24(r3)
        filt r11, r10
        lw   r12, 28(r3)
        filt r13, r12
        addi r3, r3, 32
        addi r7, r7, -1
        bne  r7, r0, word
        rdbv r8
        sd   r8, 0(r5)
        addi r5, r5, 8
        bne  r3, r4, outer
        halt
    """
    interpreter = _run_loop(source)
    # Fill DMEM with values straddling the predicate.
    values = (np.arange(num_tuples, dtype=np.uint32) * 37) % 2000
    interpreter.dmem.write(0, values)
    result = interpreter.run()
    assert result.halted
    return result.cycles / num_tuples


@lru_cache(maxsize=None)
def measure_agg_loop(num_rows: int = 512, table_slots: int = 256) -> float:
    """Cycles/row of the DMEM hash group-by update loop.

    Per row: load the key, CRC32 it, mask into the table, load the
    bucket count, increment, store — the fastest-path update with no
    collision chains (DMEM tables are sized to keep chains rare,
    §5.3).
    """
    data_bytes = num_rows * 4
    table_base = 16 * 1024
    mask = (table_slots - 1) * 8
    source = f"""
        li   r3, 0
        li   r4, {data_bytes}
        li   r9, {table_base}
        li   r14, {mask}
    row:
        lw   r10, 0(r3)
        li   r11, 0
        crc32w r11, r10
        slli r12, r11, 3
        and  r12, r12, r14
        add  r12, r12, r9
        ld   r13, 0(r12)
        addi r13, r13, 1
        sd   r13, 0(r12)
        addi r3, r3, 4
        bne  r3, r4, row
        halt
    """
    interpreter = _run_loop(source)
    keys = (np.arange(num_rows, dtype=np.uint32) * 7) % 64
    interpreter.dmem.write(0, keys)
    result = interpreter.run()
    assert result.halted
    return result.cycles / num_rows
