"""Result containers and perf/watt accounting for SQL operators.

Every operator returns a platform-tagged result: the DPU side carries
its :class:`~repro.core.dpu.LaunchResult` (simulated cycles), the
Xeon side its modelled seconds. ``efficiency_gain`` computes the
paper's figure of merit — performance per provisioned watt, DPU over
Xeon (Figures 14 and 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ...baseline.xeon import XEON_E5_2699V3, XeonConfig
from ...core.config import DPUConfig

__all__ = ["DpuOpResult", "XeonOpResult", "QueryComparison", "efficiency_gain"]


@dataclass
class DpuOpResult:
    """One operator (or query) executed on the simulated DPU."""

    value: Any
    cycles: float
    config: DPUConfig
    bytes_streamed: int = 0
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.cycles / self.config.clock_hz

    @property
    def gbps(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.bytes_streamed / self.seconds / 1e9


@dataclass
class XeonOpResult:
    """The same operator on the modelled Xeon baseline."""

    value: Any
    seconds: float
    config: XeonConfig = XEON_E5_2699V3
    bytes_streamed: int = 0
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def gbps(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.bytes_streamed / self.seconds / 1e9


def efficiency_gain(dpu: DpuOpResult, xeon: XeonOpResult) -> float:
    """Perf/watt advantage of the DPU (paper's normalized metric).

    perf = 1/seconds; watts = provisioned TDP on both sides (6 W DPU,
    145 W Xeon socket).
    """
    if dpu.seconds <= 0 or xeon.seconds <= 0:
        raise ValueError("both results need positive runtimes")
    dpu_perf_per_watt = (1.0 / dpu.seconds) / dpu.config.tdp_watts
    xeon_perf_per_watt = (1.0 / xeon.seconds) / xeon.config.tdp_watts
    return dpu_perf_per_watt / xeon_perf_per_watt


@dataclass
class QueryComparison:
    """One row of Figure 14 / Figure 16: a named DPU-vs-Xeon result."""

    name: str
    dpu: DpuOpResult
    xeon: XeonOpResult
    paper_gain: Optional[float] = None

    @property
    def gain(self) -> float:
        return efficiency_gain(self.dpu, self.xeon)

    def row(self) -> str:
        paper = f"{self.paper_gain:5.1f}x" if self.paper_gain else "   —  "
        return (
            f"{self.name:<22} dpu={self.dpu.seconds * 1e3:9.3f} ms  "
            f"x86={self.xeon.seconds * 1e3:9.3f} ms  "
            f"gain={self.gain:5.1f}x  paper~{paper}"
        )


def comparison_table(rows: List[QueryComparison]) -> str:
    lines = [
        f"{'workload':<22} {'DPU time':>16} {'x86 time':>16} "
        f"{'perf/W gain':>12} {'paper':>8}"
    ]
    lines.extend(row.row() for row in rows)
    return "\n".join(lines)
