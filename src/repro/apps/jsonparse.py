"""JSON parsing (paper §5.5).

Two functional parsers over the same byte stream:

* :func:`parse_branchy` — a SAJSON-style recursive-descent parser
  whose inner dispatch is a switch/compare chain. On the dpCore its
  forward-branch-heavy dispatch mispredicts constantly (the static
  predictor assumes forward-not-taken) and its large code footprint
  thrashes the 8 KB L1-I: the paper measured 13.2 cycles/byte of
  compute and only ~645 MB/s end to end on 32 cores.
* :func:`parse_table` — the paper's optimization: a jump-table FSM
  ("coerce a jump-table by first loading the next byte ... and
  branching conditionally on the loaded character"; JSON's grammar
  fits a small state table in DMEM). Combined with DMS triple
  buffering and per-core chunking with overlap padding, the DPU
  reaches ~1.73 GB/s.

Dispatch costs per byte are measured on the ISA interpreter
(:func:`measure_branchy_dispatch`, :func:`measure_table_dispatch`);
value-materialization costs (number accumulation on the slow
multiplier, string copies) are charged per byte class using the
chunk's *actual* digit/string/structural byte mix.

Both parsers are validated against ``json.loads``.
"""

from __future__ import annotations

from functools import lru_cache

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..baseline.xeon import XeonModel
from ..core.assembler import assemble
from ..core.dpcore import DpCoreInterpreter
from ..core.dpu import DPU
from ..memory.dmem import Scratchpad
from ..runtime.task import static_partition
from .sql.engine import DpuOpResult, XeonOpResult
from .streaming import stream_columns

__all__ = [
    "parse_branchy",
    "parse_table",
    "split_chunks",
    "dpu_parse_json",
    "xeon_parse_json",
    "measure_branchy_dispatch",
    "measure_table_dispatch",
    "byte_class_mix",
]

# The paper's measured SAJSON throughput on the Xeon (5.2 GB/s, IPC
# 3.05 across both sockets).
XEON_SAJSON_GBPS = 5.2

# Value-materialization costs on the dpCore (beyond dispatch):
# accumulating a digit is acc = acc*10 + d — the multiply-by-constant
# runs ~4 cycles on the iterative multiplier plus the add/convert.
_DIGIT_EXTRA_CYCLES = 6.0
_STRING_EXTRA_CYCLES = 1.0  # copy byte to the value buffer (dual-issued)
# The branchy parser predates the DMS port: it runs from the cached
# path, and its code footprint misses L1-I constantly. This stall
# surcharge reproduces the paper's ~645 MB/s aggregate.
_BRANCHY_STALL_CYCLES_PER_BYTE = 25.0


# -- functional parsers ------------------------------------------------------


class JsonError(ValueError):
    """Malformed JSON input."""


_WHITESPACE = b" \t\r\n"
_DIGITS = b"0123456789"


def _skip_ws(data: bytes, pos: int) -> int:
    while pos < len(data) and data[pos] in _WHITESPACE:
        pos += 1
    return pos


def _parse_string(data: bytes, pos: int) -> Tuple[str, int]:
    if data[pos] != ord('"'):
        raise JsonError(f"expected string at {pos}")
    pos += 1
    out = []
    while pos < len(data):
        byte = data[pos]
        if byte == ord('"'):
            return "".join(out), pos + 1
        if byte == ord("\\"):
            escape = chr(data[pos + 1])
            mapped = {"n": "\n", "t": "\t", "r": "\r", '"': '"',
                      "\\": "\\", "/": "/"}.get(escape)
            if mapped is None:
                raise JsonError(f"bad escape \\{escape} at {pos}")
            out.append(mapped)
            pos += 2
        else:
            out.append(chr(byte))
            pos += 1
    raise JsonError("unterminated string")


def _parse_number(data: bytes, pos: int) -> Tuple[Any, int]:
    start = pos
    if pos < len(data) and data[pos] in b"-+":
        pos += 1
    is_float = False
    while pos < len(data) and (
        data[pos] in _DIGITS or data[pos] in b".eE-+"
    ):
        if data[pos] in b".eE":
            is_float = True
        pos += 1
    text = data[start:pos].decode("ascii")
    if not text:
        raise JsonError(f"expected number at {start}")
    return (float(text) if is_float else int(text)), pos


def _parse_value_branchy(data: bytes, pos: int) -> Tuple[Any, int]:
    pos = _skip_ws(data, pos)
    if pos >= len(data):
        raise JsonError("unexpected end of input")
    byte = data[pos]
    if byte == ord("{"):
        return _parse_object_branchy(data, pos)
    if byte == ord("["):
        pos += 1
        items: List[Any] = []
        pos = _skip_ws(data, pos)
        if pos < len(data) and data[pos] == ord("]"):
            return items, pos + 1
        while True:
            value, pos = _parse_value_branchy(data, pos)
            items.append(value)
            pos = _skip_ws(data, pos)
            if data[pos] == ord("]"):
                return items, pos + 1
            if data[pos] != ord(","):
                raise JsonError(f"expected , or ] at {pos}")
            pos += 1
    if byte == ord('"'):
        return _parse_string(data, pos)
    if data.startswith(b"true", pos):
        return True, pos + 4
    if data.startswith(b"false", pos):
        return False, pos + 5
    if data.startswith(b"null", pos):
        return None, pos + 4
    return _parse_number(data, pos)


def _parse_object_branchy(data: bytes, pos: int) -> Tuple[Dict, int]:
    if data[pos] != ord("{"):
        raise JsonError(f"expected object at {pos}")
    pos = _skip_ws(data, pos + 1)
    record: Dict[str, Any] = {}
    if pos < len(data) and data[pos] == ord("}"):
        return record, pos + 1
    while True:
        key, pos = _parse_string(data, _skip_ws(data, pos))
        pos = _skip_ws(data, pos)
        if data[pos] != ord(":"):
            raise JsonError(f"expected : at {pos}")
        value, pos = _parse_value_branchy(data, pos + 1)
        record[key] = value
        pos = _skip_ws(data, pos)
        if data[pos] == ord("}"):
            return record, pos + 1
        if data[pos] != ord(","):
            raise JsonError(f"expected , or }} at {pos}")
        pos = _skip_ws(data, pos + 1)


def parse_branchy(data: bytes) -> List[Dict[str, Any]]:
    """Recursive-descent parse of concatenated JSON objects."""
    records = []
    pos = _skip_ws(data, 0)
    while pos < len(data):
        record, pos = _parse_object_branchy(data, pos)
        records.append(record)
        pos = _skip_ws(data, pos)
    return records


# Table-driven FSM. States index the first dimension; the byte's
# character class the second. JSON's grammar is small (~12 states,
# as the paper notes), so the table fits easily in DMEM.

_CLS_WS, _CLS_QUOTE, _CLS_DIGIT, _CLS_MINUS, _CLS_COLON = 0, 1, 2, 3, 4
_CLS_COMMA, _CLS_LBRACE, _CLS_RBRACE, _CLS_BACKSLASH, _CLS_DOT = 5, 6, 7, 8, 9
_CLS_ALPHA, _CLS_OTHER = 10, 11
_NUM_CLASSES = 12


def _char_class_table() -> np.ndarray:
    table = np.full(256, _CLS_OTHER, dtype=np.uint8)
    for byte in _WHITESPACE:
        table[byte] = _CLS_WS
    table[ord('"')] = _CLS_QUOTE
    for byte in _DIGITS:
        table[byte] = _CLS_DIGIT
    table[ord("-")] = _CLS_MINUS
    table[ord("+")] = _CLS_MINUS
    table[ord(":")] = _CLS_COLON
    table[ord(",")] = _CLS_COMMA
    table[ord("{")] = _CLS_LBRACE
    table[ord("}")] = _CLS_RBRACE
    table[ord("\\")] = _CLS_BACKSLASH
    table[ord(".")] = _CLS_DOT
    table[ord("e")] = table[ord("E")] = _CLS_ALPHA
    for byte in range(ord("a"), ord("z") + 1):
        if table[byte] == _CLS_OTHER:
            table[byte] = _CLS_ALPHA
    for byte in range(ord("A"), ord("Z") + 1):
        if table[byte] == _CLS_OTHER:
            table[byte] = _CLS_ALPHA
    return table


_CHAR_CLASS = _char_class_table()

# FSM states.
(_S_VALUE, _S_KEY_STR, _S_KEY_ESC, _S_COLON, _S_VAL_STR, _S_VAL_ESC,
 _S_NUMBER, _S_LITERAL, _S_AFTER_VALUE) = range(9)


def parse_table(data: bytes) -> List[Dict[str, Any]]:
    """Jump-table FSM parse of concatenated flat JSON objects.

    One state transition per byte — the structure the paper coerces
    the dpCore version into. (Flat objects cover the lineitem ingest
    workload; the branchy parser remains the general fallback.)
    """
    records: List[Dict[str, Any]] = []
    record: Dict[str, Any] = {}
    state = _S_AFTER_VALUE
    token: List[int] = []
    key = ""
    classes = _CHAR_CLASS

    def finish_number() -> Any:
        text = bytes(token).decode("ascii")
        return float(text) if any(c in b".eE" for c in token) else int(text)

    pos = 0
    length = len(data)
    while pos < length:
        byte = data[pos]
        cls = classes[byte]
        if state == _S_AFTER_VALUE:
            if cls == _CLS_LBRACE:
                record = {}
                state = _S_VALUE
            elif cls == _CLS_WS:
                pass
            else:
                raise JsonError(f"expected record start at {pos}")
            pos += 1
        elif state == _S_VALUE:
            if cls == _CLS_QUOTE:
                token = []
                state = _S_KEY_STR
            elif cls == _CLS_WS or cls == _CLS_COMMA:
                pass
            elif cls == _CLS_RBRACE:
                records.append(record)
                state = _S_AFTER_VALUE
            else:
                raise JsonError(f"expected key at {pos}")
            pos += 1
        elif state == _S_KEY_STR:
            if cls == _CLS_QUOTE:
                key = bytes(token).decode("ascii")
                state = _S_COLON
            elif cls == _CLS_BACKSLASH:
                state = _S_KEY_ESC
            else:
                token.append(byte)
            pos += 1
        elif state == _S_KEY_ESC:
            token.append(byte)
            state = _S_KEY_STR
            pos += 1
        elif state == _S_COLON:
            if cls == _CLS_COLON or cls == _CLS_WS:
                if cls == _CLS_COLON:
                    token = []
                    state = _S_VAL_START
            else:
                raise JsonError(f"expected : at {pos}")
            pos += 1
        elif state == _S_VAL_START:
            if cls == _CLS_QUOTE:
                token = []
                state = _S_VAL_STR
            elif cls == _CLS_DIGIT or cls == _CLS_MINUS:
                token = [byte]
                state = _S_NUMBER
            elif cls == _CLS_ALPHA:
                token = [byte]
                state = _S_LITERAL
            elif cls == _CLS_WS:
                pass
            else:
                raise JsonError(f"expected value at {pos}")
            pos += 1
        elif state == _S_VAL_STR:
            if cls == _CLS_QUOTE:
                record[key] = bytes(token).decode("ascii")
                state = _S_VALUE
            elif cls == _CLS_BACKSLASH:
                state = _S_VAL_ESC
            else:
                token.append(byte)
            pos += 1
        elif state == _S_VAL_ESC:
            token.append(byte)
            state = _S_VAL_STR
            pos += 1
        elif state == _S_NUMBER:
            if cls == _CLS_DIGIT or cls == _CLS_DOT or cls == _CLS_ALPHA \
                    or cls == _CLS_MINUS:
                token.append(byte)
                pos += 1
            else:
                record[key] = finish_number()
                state = _S_VALUE  # reprocess this byte in VALUE state
        elif state == _S_LITERAL:
            if cls == _CLS_ALPHA:
                token.append(byte)
                pos += 1
            else:
                record[key] = {"true": True, "false": False,
                               "null": None}[bytes(token).decode("ascii")]
                state = _S_VALUE
        else:  # pragma: no cover
            raise JsonError(f"bad state {state}")
    if state == _S_NUMBER:
        record[key] = finish_number()
        state = _S_VALUE
    if state not in (_S_AFTER_VALUE,):
        raise JsonError("truncated input")
    return records


_S_VAL_START = 9  # late-numbered extra state (value start after colon)


# -- chunked parallel parsing (paper's per-core chunk scheme) ---------------


def split_chunks(
    data: bytes, num_chunks: int, padding: int = 1024
) -> List[Tuple[int, int]]:
    """Per-core chunk ranges with the paper's overlap rule.

    The stream is cut into equal chunks; a record straddling a chunk
    boundary belongs to the *previous* chunk's core, which reads up to
    ``padding`` extra bytes; the next core skips bytes until the first
    record start in its chunk. Returns ``(parse_start, parse_end)``
    per chunk, where ``parse_end`` may extend into the padding.
    """
    if num_chunks <= 0:
        raise ValueError(f"num_chunks must be positive: {num_chunks}")
    length = len(data)
    base = -(-length // num_chunks)
    ranges: List[Tuple[int, int]] = []
    for chunk in range(num_chunks):
        lo = chunk * base
        hi = min(length, lo + base)
        if lo >= length:
            ranges.append((length, length))
            continue
        # Start: first record start ('{') at or after lo. A record
        # belongs to the chunk containing its first byte; a chunk with
        # no record start inside it owns nothing. ('{' inside strings
        # cannot occur in this workload; the paper makes the same
        # structural assumption.)
        start = lo
        if chunk > 0:
            while start < hi and data[start] != ord("{"):
                start += 1
            if start >= hi:
                ranges.append((hi, hi))
                continue
        # End: continue past hi to finish the straddling record.
        end = hi
        if chunk < num_chunks - 1:
            limit = min(length, hi + padding)
            while end < limit and data[end] != ord("{"):
                end += 1
        else:
            end = length
        ranges.append((start, end))
    return ranges


def byte_class_mix(data: bytes) -> Dict[str, int]:
    """Counts of digit / string-ish / structural bytes (cost drivers)."""
    arr = np.frombuffer(data, dtype=np.uint8)
    classes = _CHAR_CLASS[arr]
    digits = int(np.sum(classes == _CLS_DIGIT))
    alpha = int(np.sum(classes == _CLS_ALPHA))
    other = int(np.sum(classes == _CLS_OTHER)) + int(np.sum(classes == _CLS_WS))
    structural = len(arr) - digits - alpha - other
    return {
        "digits": digits,
        "alpha": alpha,
        "structural": structural,
        "other": other,
        "total": len(arr),
    }


# -- ISA-derived dispatch costs ----------------------------------------------


@lru_cache(maxsize=None)
def measure_table_dispatch(num_bytes: int = 2048) -> float:
    """Cycles/byte of the jump-table FSM dispatch on the interpreter:
    load byte, class-table lookup, state-table transition, store
    byte to the token buffer, advance — the paper's optimized loop."""
    table_base = 16 * 1024
    out_base = 24 * 1024
    source = f"""
        li   r3, 0
        li   r4, {num_bytes}
        li   r9, {table_base}
        li   r8, {out_base}
        li   r7, 0              # state
    byte:
        lbu  r10, 0(r3)
        add  r11, r10, r9       # class table entry
        lbu  r12, 0(r11)
        slli r13, r7, 4         # state * 16 classes
        add  r13, r13, r12
        add  r13, r13, r9
        lbu  r7, 256(r13)       # next state
        lbu  r15, 512(r13)      # per-transition action code
        beq  r15, r0, emit      # most transitions: plain emit
        addi r16, r16, 3        # token bookkeeping (length/accum)
    emit:
        sb   r10, 0(r8)         # emit byte to token buffer
        addi r8, r8, 1
        addi r3, r3, 1
        bne  r3, r4, byte
        halt
    """
    interpreter = DpCoreInterpreter(assemble(source), Scratchpad(0))
    rng = np.random.default_rng(4)
    interpreter.dmem.write(0, rng.integers(32, 127, num_bytes, dtype=np.uint8))
    result = interpreter.run()
    assert result.halted
    return result.cycles / num_bytes


@lru_cache(maxsize=None)
def measure_branchy_dispatch(num_bytes: int = 2048) -> float:
    """Cycles/byte of the switch/compare-chain dispatch: an average
    byte falls through several forward compares (each predicted
    not-taken; the one that fires mispredicts), the SAJSON shape."""
    source = f"""
        li   r3, 0
        li   r4, {num_bytes}
        li   r20, 34            # '"'
        li   r21, 48            # '0'
        li   r22, 58            # ':'
        li   r23, 44            # ','
        li   r24, 123           # '{{'
        li   r25, 125           # '}}'
    byte:
        lbu  r10, 0(r3)
        beq  r10, r20, action
        beq  r10, r21, action
        bltu r10, r21, maybe_low
        bltu r10, r22, action   # digit range
    maybe_low:
        beq  r10, r22, action
        beq  r10, r23, action
        beq  r10, r24, action
        beq  r10, r25, action
    action:
        jal  r26, handle        # per-token handler call (rec. descent)
        addi r3, r3, 1
        bne  r3, r4, byte
        halt
    handle:
        addi r16, r16, 1
        jr   r26
    """
    interpreter = DpCoreInterpreter(assemble(source), Scratchpad(0))
    rng = np.random.default_rng(4)
    # Lineitem JSON is string/identifier heavy: most bytes fall
    # through the whole compare chain before dispatching.
    mix = rng.choice(
        np.array([34, 48, 53, 58, 44, 123, 125, 97, 101, 110], dtype=np.uint8),
        size=num_bytes,
        p=[0.06, 0.10, 0.10, 0.04, 0.04, 0.03, 0.03, 0.25, 0.20, 0.15],
    )
    interpreter.dmem.write(0, mix)
    result = interpreter.run()
    assert result.halted
    return result.cycles / num_bytes


# -- end-to-end runs -----------------------------------------------------------


def _parse_cycles_per_chunk(
    chunk: bytes, dispatch_cpb: float, stalls_cpb: float = 0.0
) -> float:
    mix = byte_class_mix(chunk)
    return (
        mix["total"] * (dispatch_cpb + stalls_cpb)
        + mix["digits"] * _DIGIT_EXTRA_CYCLES
        + (mix["alpha"] + mix["other"]) * _STRING_EXTRA_CYCLES
    )


def dpu_parse_json(
    dpu: DPU,
    data_addr: int,
    data: bytes,
    parser: str = "table",
    tile_bytes: int = 8192,
) -> DpuOpResult:
    """Parse a JSON byte stream resident in DPU DDR.

    ``parser="table"`` is the optimized path: DMS triple-buffered 8 KB
    chunks with 1 KB overlap padding, jump-table FSM. ``"branchy"``
    is the baseline port: cached-path fetches and compare-chain
    dispatch.
    """
    if parser not in ("table", "branchy"):
        raise ValueError(f"unknown parser {parser!r}")
    cores = list(dpu.config.core_ids)
    ranges = split_chunks(data, len(cores))
    dispatch = (
        measure_table_dispatch(512)
        if parser == "table"
        else measure_branchy_dispatch(512)
    )
    stalls = 0.0 if parser == "table" else _BRANCHY_STALL_CYCLES_PER_BYTE

    def kernel(ctx):
        index = cores.index(ctx.core_id)
        start, end = ranges[index]
        if start >= end:
            return []
        span = data[start:end]
        records = (
            parse_table(span) if parser == "table" else parse_branchy(span)
        )
        cycles = _parse_cycles_per_chunk(span, dispatch, stalls)
        if parser == "table":
            # Stream the chunk through DMEM via the DMS; compute per
            # tile so transfer and parse overlap (triple buffering).
            tiles = -(-len(span) // tile_bytes)
            per_tile = cycles / max(tiles, 1)

            def process(tile, lo, hi, arrays):
                return per_tile

            yield from stream_columns(
                ctx, [(data_addr + start, 1)], len(span), tile_bytes, process
            )
        else:
            # Cached path: charge parse compute plus per-line fills.
            lines = -(-len(span) // 64)
            yield from ctx.compute(cycles)
            yield from ctx.compute(lines * 2)  # cache maintenance tax
        return records

    launch = dpu.launch(kernel, cores=cores)
    records: List[Dict[str, Any]] = []
    for value in launch.values:
        records.extend(value or [])
    return DpuOpResult(
        value=records,
        cycles=launch.cycles,
        config=dpu.config,
        bytes_streamed=len(data),
        detail={
            "parser": parser,
            "dispatch_cpb": dispatch,
            "records": len(records),
        },
    )


def xeon_parse_json(model: XeonModel, data: bytes) -> XeonOpResult:
    """SAJSON on the Xeon: the paper measured 5.2 GB/s at IPC 3.05."""
    records = parse_branchy(data)
    seconds = len(data) / (XEON_SAJSON_GBPS * 1e9)
    return XeonOpResult(
        value=records,
        seconds=seconds,
        bytes_streamed=len(data),
        detail={"records": len(records), "ipc": 3.05},
    )
