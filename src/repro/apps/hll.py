"""HyperLogLog cardinality estimation (paper §5.4).

The paper's optimizations, all reproduced here:

* **NTZ instead of NLZ** — the hash's leading/trailing-zero counts
  are statistically interchangeable for a well-behaved hash; NTZ is 4
  dpCore instructions via POPC (``popc((x & -x) - 1)``) while NLZ
  needs a ~13-instruction smear sequence. Both inner loops are
  assembled and measured on the ISA interpreter.
* **CRC32 vs Murmur64** — CRC32 is a single-cycle instruction; the
  Murmur64 finalizer needs two full-width multiplies on the dpCore's
  iterative low-power multiplier (~11 cycles each), which is exactly
  why "the Murmur64 implementation does poorly on the DPU".
* **ATE work stealing** — chunks are claimed with a fetch-add cursor
  rather than a static schedule, avoiding tail latency from the
  variable-latency multiplier.

The sketch itself (registers, harmonic-mean estimator with the
standard alpha_m bias correction) is shared between the DPU kernel
and the x86 baseline, so both estimate from identical register
contents.
"""

from __future__ import annotations

from functools import lru_cache

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..baseline.xeon import XeonModel
from ..core.assembler import assemble
from ..core.crc32 import crc32_column, murmur64
from ..core.dpcore import DpCoreInterpreter
from ..core.dpu import DPU
from ..memory.dmem import Scratchpad
from ..runtime.parallel import WorkQueue
from ..sim import StatsRecorder
from .sql.engine import DpuOpResult, XeonOpResult
from .streaming import stream_columns

__all__ = [
    "HllSketch",
    "hll_estimate",
    "dpu_hll",
    "xeon_hll",
    "measure_hash_loop",
    "murmur64_column",
]

# x86 HLL is a scatter-update workload: SIMD hashing is fast, but the
# random register read-modify-writes (with atomics for merging) keep
# the cores off peak stream bandwidth. 0.72 matches Haswell
# STREAM-vs-random-update measurements and reproduces the paper's ~9x
# CRC32 gain over an optimized x86 implementation.
_XEON_SCATTER_EFFICIENCY = 0.72
_XEON_OPS_PER_VALUE = 12.0  # murmur + register update + amortized atomic


def murmur64_column(values: np.ndarray) -> np.ndarray:
    """Vectorized Murmur64 finalizer over a u64 column."""
    h = values.astype(np.uint64)
    h ^= h >> np.uint64(33)
    h *= np.uint64(0xFF51AFD7ED558CCD)
    h ^= h >> np.uint64(33)
    h *= np.uint64(0xC4CEB9FE1A85EC53)
    h ^= h >> np.uint64(33)
    return h


@dataclass
class HllSketch:
    """m = 2**precision registers of max trailing-zero ranks."""

    precision: int
    registers: np.ndarray

    @classmethod
    def empty(cls, precision: int) -> "HllSketch":
        if not 4 <= precision <= 16:
            raise ValueError(f"precision must be 4..16: {precision}")
        return cls(precision, np.zeros(1 << precision, dtype=np.uint8))

    def merge(self, other: "HllSketch") -> None:
        np.maximum(self.registers, other.registers, out=self.registers)


def _update_registers(
    sketch: HllSketch, hashes: np.ndarray, hash_bits: int
) -> None:
    """Vectorized register update: bucket by low bits, rank by NTZ of
    the remaining bits (the paper's trailing-zero trick)."""
    p = sketch.precision
    buckets = (hashes & np.uint64((1 << p) - 1)).astype(np.int64)
    rest = hashes >> np.uint64(p)
    width = hash_bits - p
    # NTZ via isolate-lowest-set-bit; zero maps to full width.
    low = rest & (~rest + np.uint64(1))
    ntz = np.full(len(rest), width, dtype=np.uint8)
    nonzero = low != 0
    ntz[nonzero] = np.log2(low[nonzero].astype(np.float64)).astype(np.uint8)
    ranks = (ntz + 1).astype(np.uint8)
    np.maximum.at(sketch.registers, buckets, ranks)


def hll_estimate(sketch: HllSketch) -> float:
    """Harmonic-mean estimator with alpha_m and small-range correction
    (Flajolet et al. 2007)."""
    m = len(sketch.registers)
    alpha = {16: 0.673, 32: 0.697, 64: 0.709}.get(
        m, 0.7213 / (1 + 1.079 / m)
    )
    harmonic = np.sum(2.0 ** -sketch.registers.astype(np.float64))
    raw = alpha * m * m / harmonic
    if raw <= 2.5 * m:
        zeros = int(np.sum(sketch.registers == 0))
        if zeros:
            return m * np.log(m / zeros)
    return float(raw)


# -- ISA-derived inner-loop costs ------------------------------------------


@lru_cache(maxsize=None)
def measure_hash_loop(
    hash_fn: str = "crc32", zero_count: str = "ntz", num_values: int = 256
) -> float:
    """Cycles/value of the HLL inner loop on the ISA interpreter.

    Loads a 64-bit value from DMEM, hashes it (CRC32D instruction or
    inline Murmur64 finalizer), derives the bucket and the
    trailing/leading-zero rank, and updates the register byte.
    """
    if hash_fn not in ("crc32", "murmur64"):
        raise ValueError(f"unknown hash {hash_fn!r}")
    if zero_count not in ("ntz", "nlz"):
        raise ValueError(f"unknown zero count {zero_count!r}")
    data_bytes = num_values * 8
    table_base = 16 * 1024

    if hash_fn == "crc32":
        hash_code = """
        li   r11, 0
        crc32d r11, r10
        """
    else:
        hash_code = """
        mov  r11, r10
        srli r12, r11, 33
        xor  r11, r11, r12
        li   r13, 0xFF51AFD7ED558CCD
        mul  r11, r11, r13
        srli r12, r11, 33
        xor  r11, r11, r12
        li   r13, 0xC4CEB9FE1A85EC53
        mul  r11, r11, r13
        srli r12, r11, 33
        xor  r11, r11, r12
        """
    if zero_count == "ntz":
        # popc((x & -x) - 1): 4 instructions thanks to POPC (§5.4).
        rank_code = """
        srli r14, r11, 8
        sub  r15, r0, r14
        and  r15, r14, r15
        addi r15, r15, -1
        popc r16, r15
        """
    else:
        # Smear right then popcount the complement: the slow NLZ path.
        rank_code = """
        srli r14, r11, 8
        srli r15, r14, 1
        or   r14, r14, r15
        srli r15, r14, 2
        or   r14, r14, r15
        srli r15, r14, 4
        or   r14, r14, r15
        srli r15, r14, 8
        or   r14, r14, r15
        srli r15, r14, 16
        or   r14, r14, r15
        srli r15, r14, 32
        or   r14, r14, r15
        popc r16, r14
        li   r15, 64
        sub  r16, r15, r16
        """
    source = f"""
        li   r3, 0
        li   r4, {data_bytes}
        li   r9, {table_base}
    value:
        ld   r10, 0(r3)
{hash_code}
        andi r17, r11, 255
        add  r17, r17, r9
{rank_code}
        lbu  r18, 0(r17)
        blt  r16, r18, skip
        sb   r16, 0(r17)
    skip:
        addi r3, r3, 8
        bne  r3, r4, value
        halt
    """
    interpreter = DpCoreInterpreter(assemble(source), Scratchpad(0))
    rng = np.random.default_rng(3)
    interpreter.dmem.write(0, rng.integers(0, 2**63, num_values, dtype=np.int64))
    result = interpreter.run()
    assert result.halted
    return result.cycles / num_values


# -- DPU execution ------------------------------------------------------------


def dpu_hll(
    dpu: DPU,
    values_addr: int,
    num_values: int,
    precision: int = 12,
    hash_fn: str = "crc32",
    zero_count: str = "ntz",
    chunk_values: int = 8192,
    cycles_per_value: Optional[float] = None,
    host_values: Optional[np.ndarray] = None,
    cores: Optional[Sequence[int]] = None,
) -> DpuOpResult:
    """Estimate the cardinality of a u64 column in DPU DDR.

    Work stealing over chunks (ATE fetch-add), DMS-streamed values,
    per-core sketches merged at the first listed core over the
    mailbox. ``cores`` restricts the launch to a subset (e.g. the
    survivors from :func:`repro.runtime.failover.surviving_cores`);
    the fetch-add cursor redistributes the missing cores' chunks, so
    the estimate is bit-identical at any core count.
    """
    if host_values is None:
        host_values = dpu.load_array(values_addr, num_values, np.uint64)
    if cycles_per_value is None:
        cycles_per_value = measure_hash_loop(hash_fn, zero_count, 128)
    num_chunks = -(-num_values // chunk_values)
    cores = list(cores) if cores is not None else list(dpu.config.core_ids)
    queue = WorkQueue(dpu, owner=cores[0], dmem_offset=0, num_chunks=num_chunks)
    hash_bits = 32 if hash_fn == "crc32" else 64

    def kernel(ctx):
        sketch = HllSketch.empty(precision)
        while True:
            chunk = yield from queue.claim(ctx)
            if chunk is None:
                break
            lo = chunk * chunk_values
            hi = min(num_values, lo + chunk_values)

            def process(tile, tlo, thi, arrays):
                block = arrays[0]
                if hash_fn == "crc32":
                    hashes = crc32_column(block).astype(np.uint64)
                else:
                    hashes = murmur64_column(block)
                _update_registers(sketch, hashes, hash_bits)
                return (thi - tlo) * cycles_per_value

            yield from stream_columns(
                ctx,
                [(values_addr + lo * 8, 8)],
                hi - lo,
                1024,  # 8 KB tiles, double-buffered: 16 KB of DMEM
                process,
                dmem_base=64,  # keep the work queue counter word intact
            )
        if ctx.core_id != cores[0]:
            yield from ctx.mbox_send(cores[0], sketch.registers)
            return None
        merged = sketch
        for _ in range(len(cores) - 1):
            _src, registers = yield from ctx.mbox_receive()
            np.maximum(merged.registers, registers, out=merged.registers)
            yield from ctx.compute(len(registers) / 8)  # 8 B/cycle merge
        return merged

    launch = dpu.launch(kernel, cores=cores)
    sketch = launch.values[0]
    estimate = hll_estimate(sketch)
    return DpuOpResult(
        value=estimate,
        cycles=launch.cycles,
        config=dpu.config,
        bytes_streamed=num_values * 8,
        detail={
            "hash": hash_fn,
            "zero_count": zero_count,
            "cycles_per_value": cycles_per_value,
            "precision": precision,
            "registers": sketch.registers,
        },
    )


def xeon_hll(
    model: XeonModel,
    values: np.ndarray,
    precision: int = 12,
    hash_fn: str = "murmur64",
) -> XeonOpResult:
    """Optimized x86 HLL (SIMD hash + atomics, per the paper)."""
    sketch = HllSketch.empty(precision)
    if hash_fn == "crc32":
        hashes = crc32_column(values).astype(np.uint64)
        hash_bits = 32
    else:
        hashes = murmur64_column(values.astype(np.uint64))
        hash_bits = 64
    _update_registers(sketch, hashes, hash_bits)
    estimate = hll_estimate(sketch)
    compute = model.compute_seconds(len(values) * _XEON_OPS_PER_VALUE)
    memory = model.memory_seconds(values.nbytes) / _XEON_SCATTER_EFFICIENCY
    return XeonOpResult(
        value=estimate,
        seconds=max(compute, memory),
        bytes_streamed=values.nbytes,
        detail={"hash": hash_fn},
    )
