"""The paper's co-designed applications (§5)."""

from . import disparity, hll, jsonparse, simsearch, sql, svm
from .streaming import ColumnRef, stream_columns

__all__ = [
    "ColumnRef",
    "disparity",
    "hll",
    "jsonparse",
    "simsearch",
    "sql",
    "stream_columns",
    "svm",
]
