"""Lightweight counters and interval statistics for simulations.

Benchmarks use a :class:`StatsRecorder` to report the quantities the
paper plots: bytes moved per unit time, per-unit utilization, RPC
latency histograms. The recorder is intentionally simple — named
counters plus named sample series — so any hardware model can feed it
without coupling.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Tuple

__all__ = ["StatsRecorder", "SampleSeries"]


class SampleSeries:
    """A named series of numeric samples with summary statistics.

    Mean, min, and max are maintained incrementally so summary reads
    are O(1) regardless of series length; order statistics
    (:meth:`percentile`, :meth:`histogram`) still sort on demand.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.samples.append(value)
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values) -> None:
        for value in values:
            self.add(value)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return self._total / len(self.samples)

    @property
    def minimum(self) -> float:
        return self._min if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.samples else 0.0

    @property
    def stddev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (n - 1))

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile; ``fraction`` in [0, 1]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]

    def histogram(self, bins: int = 8) -> Tuple[List[int], List[float]]:
        """Equal-width histogram as ``(counts, edges)`` — numpy style,
        ``len(edges) == len(counts) + 1``.

        Degenerate series (empty, or all samples equal) collapse to
        zero or one bucket so renderers never divide by a zero-width
        range.
        """
        if bins <= 0:
            raise ValueError(f"bins must be positive: {bins}")
        if not self.samples:
            return [], []
        lo, hi = self._min, self._max
        if hi == lo:
            return [len(self.samples)], [lo, hi]
        width = (hi - lo) / bins
        counts = [0] * bins
        for value in self.samples:
            index = min(bins - 1, int((value - lo) / width))
            counts[index] += 1
        edges = [lo + i * width for i in range(bins)] + [hi]
        return counts, edges


class StatsRecorder:
    """Named counters plus named sample series.

    Counters accumulate (bytes moved, descriptors retired, messages
    routed); series collect individual measurements (RPC round-trip
    cycles, per-buffer fill times).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)
        self.series: Dict[str, SampleSeries] = {}
        self.gauges: Dict[str, float] = {}

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount

    def peak(self, name: str, value: float) -> None:
        """Track the high-water mark of a gauge (queue occupancy,
        bytes in use); O(1) and allocation-free on the hot path."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = float(value)

    def gauge(self, name: str) -> float:
        return self.gauges.get(name, 0.0)

    def sample(self, name: str, value: float) -> None:
        if name not in self.series:
            self.series[name] = SampleSeries(name)
        self.series[name].add(value)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def get_series(self, name: str) -> SampleSeries:
        if name not in self.series:
            self.series[name] = SampleSeries(name)
        return self.series[name]

    def merge(self, other: "StatsRecorder") -> None:
        """Fold another recorder's data into this one."""
        for name, amount in other.counters.items():
            self.counters[name] += amount
        for name, series in other.series.items():
            target = self.get_series(name)
            target.extend(series.samples)
        for name, value in other.gauges.items():
            self.peak(name, value)

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of counters and series means, for reporting.

        The shape of this dict is pinned by regression tests — new
        sections belong in :meth:`to_dict`, not here.
        """
        result = dict(self.counters)
        for name, series in self.series.items():
            result[f"{name}.mean"] = series.mean
            result[f"{name}.count"] = float(series.count)
        return result

    def to_dict(self) -> Dict[str, Dict[str, float]]:
        """Full, deterministic export: counters, gauges, and series
        summaries as separate sections, each sorted by name."""
        series_out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.series):
            series = self.series[name]
            series_out[name] = {
                "count": float(series.count),
                "mean": series.mean,
                "min": series.minimum,
                "max": series.maximum,
                "p50": series.percentile(0.50),
                "p95": series.percentile(0.95),
            }
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "series": series_out,
        }
