"""Lightweight counters and interval statistics for simulations.

Benchmarks use a :class:`StatsRecorder` to report the quantities the
paper plots: bytes moved per unit time, per-unit utilization, RPC
latency histograms. The recorder is intentionally simple — named
counters plus named sample series — so any hardware model can feed it
without coupling.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List

__all__ = ["StatsRecorder", "SampleSeries"]


class SampleSeries:
    """A named series of numeric samples with summary statistics."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        self.samples.append(float(value))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return self.total / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def stddev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (n - 1))

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile; ``fraction`` in [0, 1]."""
        if not self.samples:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
        return ordered[rank]


class StatsRecorder:
    """Named counters plus named sample series.

    Counters accumulate (bytes moved, descriptors retired, messages
    routed); series collect individual measurements (RPC round-trip
    cycles, per-buffer fill times).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = defaultdict(float)
        self.series: Dict[str, SampleSeries] = {}
        self.gauges: Dict[str, float] = {}

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount

    def peak(self, name: str, value: float) -> None:
        """Track the high-water mark of a gauge (queue occupancy,
        bytes in use); O(1) and allocation-free on the hot path."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = float(value)

    def gauge(self, name: str) -> float:
        return self.gauges.get(name, 0.0)

    def sample(self, name: str, value: float) -> None:
        if name not in self.series:
            self.series[name] = SampleSeries(name)
        self.series[name].add(value)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def get_series(self, name: str) -> SampleSeries:
        if name not in self.series:
            self.series[name] = SampleSeries(name)
        return self.series[name]

    def merge(self, other: "StatsRecorder") -> None:
        """Fold another recorder's data into this one."""
        for name, amount in other.counters.items():
            self.counters[name] += amount
        for name, series in other.series.items():
            target = self.get_series(name)
            target.samples.extend(series.samples)
        for name, value in other.gauges.items():
            self.peak(name, value)

    def snapshot(self) -> Dict[str, float]:
        """Flat dict of counters and series means, for reporting."""
        result = dict(self.counters)
        for name, series in self.series.items():
            result[f"{name}.mean"] = series.mean
            result[f"{name}.count"] = float(series.count)
        return result
