"""Shared-resource primitives layered on the event kernel.

These model the contention points of the DPU SoC:

* :class:`Resource` — an N-slot mutex (DMAC descriptor slots, AXI
  request credits, locks).
* :class:`Store` — an unbounded or bounded FIFO of items (mailboxes,
  DMAD active lists, work queues).
* :class:`BandwidthServer` — a serially-served channel where a transfer
  of ``nbytes`` occupies the channel for ``nbytes / bytes_per_cycle``
  plus a fixed per-transaction overhead; queueing under contention
  falls out naturally. Used for DDR channels, the AXI bus and the
  DMAX/ATE crossbars.
* :class:`BinaryEvent` — a set/clear flag with waiters, matching the
  DMS's 32 per-core binary events and the ``wfe`` instruction.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Generator, Optional

from .engine import Engine, SimEvent, SimulationError, Timeout

__all__ = ["Resource", "Store", "BandwidthServer", "BinaryEvent"]


class Resource:
    """A FIFO resource with ``capacity`` slots.

    ``acquire()`` returns an event that succeeds when a slot is free;
    the holder must call ``release()`` exactly once.
    """

    __slots__ = ("engine", "capacity", "in_use", "_waiters")

    def __init__(self, engine: Engine, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[SimEvent] = deque()

    @property
    def queue_depth(self) -> int:
        """Acquirers currently waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> SimEvent:
        event = SimEvent(self.engine)
        if self.in_use < self.capacity:
            self.in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    def held(self) -> Generator:
        """Process helper: ``yield from resource.held()`` is acquire;
        the caller must still release. Provided for symmetry/clarity."""
        yield self.acquire()


class Store:
    """A FIFO of items with blocking ``get`` and optional capacity.

    ``put`` returns an event succeeding once the item is accepted
    (immediately unless the store is full); ``get`` returns an event
    succeeding with the oldest item.
    """

    def __init__(self, engine: Engine, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()
        self._putters: Deque[tuple] = deque()
        # Occupancy telemetry (O(1), never schedules events): the
        # high-water mark of queued items and how many puts blocked on
        # a full store — the signals overload diagnosis needs.
        self.peak_occupancy = 0
        self.blocked_puts = 0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def blocked_putters(self) -> int:
        """Producers currently stalled on a full store."""
        return len(self._putters)

    def put(self, item: Any) -> SimEvent:
        event = SimEvent(self.engine)
        if self._getters:
            # Hand straight to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            event.succeed()
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            if len(self.items) > self.peak_occupancy:
                self.peak_occupancy = len(self.items)
            event.succeed()
        else:
            self._putters.append((event, item))
            self.blocked_puts += 1
        return event

    def get(self) -> SimEvent:
        event = SimEvent(self.engine)
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def cancel_get(self, event: SimEvent) -> bool:
        """Withdraw a pending ``get``.

        A getter that abandons its wait (e.g. a lease expired while it
        raced a timeout under ``any_of``) must deregister, or the next
        ``put`` would hand its item to an event nobody reads — silently
        swallowing a message. Returns ``True`` if the event was still
        queued; ``False`` if it already fired (the caller then owns the
        delivered item and must handle it).
        """
        try:
            self._getters.remove(event)
        except ValueError:
            return False
        return True

    def try_get(self) -> tuple:
        """Non-blocking get: returns ``(True, item)`` or ``(False, None)``."""
        if self.items:
            item = self.items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self.items) < self.capacity
        ):
            event, item = self._putters.popleft()
            self.items.append(item)
            event.succeed()


class BandwidthServer:
    """A channel that serves transfers serially at a fixed byte rate.

    Transfer duration is ``overhead_cycles + ceil(nbytes /
    bytes_per_cycle)``. Requests queue FIFO, so sustained throughput
    under contention approaches ``bytes_per_cycle`` minus the overhead
    tax — exactly the behaviour that makes small DMS buffers slower
    than large ones in the paper's Figure 11.
    """

    def __init__(
        self,
        engine: Engine,
        bytes_per_cycle: float,
        overhead_cycles: float = 0.0,
        name: str = "channel",
    ) -> None:
        if bytes_per_cycle <= 0:
            raise SimulationError("bytes_per_cycle must be positive")
        self.engine = engine
        self.bytes_per_cycle = bytes_per_cycle
        self.overhead_cycles = overhead_cycles
        self.name = name
        self._free_at: float = 0.0
        self.busy_cycles: float = 0.0
        self.bytes_served: int = 0
        self.transfers_served: int = 0

    def transfer_cycles(self, nbytes: int) -> float:
        """Service time for a transfer of ``nbytes`` (no queueing)."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        return self.overhead_cycles + math.ceil(nbytes / self.bytes_per_cycle)

    def transfer(self, nbytes: int) -> SimEvent:
        """Request a transfer; the event succeeds when it completes.

        Because the server is work-conserving and FIFO, completion time
        is ``max(now, free_at) + service``.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        service = self.overhead_cycles + math.ceil(nbytes / self.bytes_per_cycle)
        now = self.engine.now
        free_at = self._free_at
        start = now if now > free_at else free_at
        finish = start + service
        self._free_at = finish
        self.busy_cycles += service
        self.bytes_served += nbytes
        self.transfers_served += 1
        return Timeout(self.engine, finish - now, nbytes)

    def utilization(self) -> float:
        """Fraction of elapsed time the channel spent serving."""
        if self.engine.now <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / self.engine.now)


class BinaryEvent:
    """A DMS-style binary event: set/clear flag plus waiters.

    ``wait()`` returns an event that succeeds immediately if the flag
    is set, else when it is next set. This backs the dpCore ``wfe``
    instruction and descriptor wait/notify fields.
    """

    def __init__(self, engine: Engine, event_id: int = 0) -> None:
        self.engine = engine
        self.event_id = event_id
        self.is_set = False
        self._waiters: Deque[SimEvent] = deque()
        self._clear_waiters: Deque[SimEvent] = deque()

    def set(self) -> None:
        self.is_set = True
        while self._waiters:
            self._waiters.popleft().succeed()

    def clear(self) -> None:
        self.is_set = False
        while self._clear_waiters:
            self._clear_waiters.popleft().succeed()

    def wait(self) -> SimEvent:
        event = SimEvent(self.engine)
        if self.is_set:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def wait_clear(self) -> SimEvent:
        """Event succeeding when the flag is (or becomes) clear.

        The DMS uses this for buffer flow control: a descriptor whose
        notify event is still set (buffer unconsumed) must not refill
        the buffer — the hardware applies back pressure instead.
        """
        event = SimEvent(self.engine)
        if not self.is_set:
            event.succeed()
        else:
            self._clear_waiters.append(event)
        return event
