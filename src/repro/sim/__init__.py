"""Discrete-event simulation substrate for the DPU reproduction."""

from .engine import (
    AllOf,
    AnyOf,
    DeadlockError,
    Engine,
    Process,
    SimEvent,
    SimulationError,
    Timeout,
    Watchdog,
)
from .resources import BandwidthServer, BinaryEvent, Resource, Store
from .trace import SampleSeries, StatsRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthServer",
    "BinaryEvent",
    "DeadlockError",
    "Engine",
    "Process",
    "Resource",
    "SampleSeries",
    "SimEvent",
    "SimulationError",
    "StatsRecorder",
    "Store",
    "Timeout",
    "Watchdog",
]
