"""Discrete-event simulation kernel.

Everything in the reproduction — dpCores, the DMS pipeline, the ATE
crossbar, DDR channels, and software tasks — is a *process*: a Python
generator driven by an :class:`Engine`. Processes yield events
(:class:`SimEvent`, timeouts, or other processes) and are resumed when
those events trigger. One simulated time unit is one dpCore clock cycle
(800 MHz on the 40 nm DPU).

The kernel is deliberately small (events, processes, a binary heap) so
that its behaviour is easy to audit; richer constructs (FIFO resources,
bandwidth servers, mailbox stores) are layered on top in
:mod:`repro.sim.resources`.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Engine",
    "SimEvent",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "DeadlockError",
    "Watchdog",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class DeadlockError(SimulationError):
    """The modelled system can make no progress.

    Raised when the event queue drains while processes still wait
    (deadlock), or when a :class:`Watchdog` budget is exceeded
    (livelock). ``blocked`` names the stuck processes so the failure
    is diagnosable rather than a silent hang.
    """

    def __init__(self, message: str, blocked: Iterable["Process"] = ()) -> None:
        self.blocked = list(blocked)
        if self.blocked:
            detail = "; ".join(
                f"{process.name} waiting on {process._waiting_on!r}"
                for process in self.blocked
            )
            message = f"{message} [blocked: {detail}]"
        super().__init__(message)


class Watchdog:
    """Livelock guard: bounds on events processed and host wall time.

    Attach with ``engine.watchdog = Watchdog(...)``; the engine calls
    :meth:`check` once per dispatched event. Exceeding either budget
    raises :class:`DeadlockError` naming the still-pending processes.
    The wall clock (host ``time.monotonic``) never influences simulated
    behaviour — it can only abort a runaway simulation.
    """

    def __init__(
        self,
        max_events: Optional[int] = None,
        max_wall_seconds: Optional[float] = None,
        wall_check_interval: int = 4096,
    ) -> None:
        if max_events is not None and max_events <= 0:
            raise SimulationError(f"max_events must be positive: {max_events}")
        if max_wall_seconds is not None and max_wall_seconds <= 0:
            raise SimulationError(
                f"max_wall_seconds must be positive: {max_wall_seconds}"
            )
        self.max_events = max_events
        self.max_wall_seconds = max_wall_seconds
        self.wall_check_interval = wall_check_interval
        self.events_dispatched = 0
        self._started_at: Optional[float] = None

    def check(self, engine: "Engine") -> None:
        self.events_dispatched += 1
        if self.max_events is not None and self.events_dispatched > self.max_events:
            raise DeadlockError(
                f"livelock: watchdog event budget of {self.max_events} "
                f"exceeded at t={engine.now}",
                blocked=engine.blocked_processes(),
            )
        if self.max_wall_seconds is None:
            return
        if self._started_at is None:
            self._started_at = time.monotonic()
        if self.events_dispatched % self.wall_check_interval == 0:
            elapsed = time.monotonic() - self._started_at
            if elapsed > self.max_wall_seconds:
                raise DeadlockError(
                    f"livelock: watchdog wall-clock budget of "
                    f"{self.max_wall_seconds} s exceeded at t={engine.now}",
                    blocked=engine.blocked_processes(),
                )


class SimEvent:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, then is either *succeeded* (with an
    optional value delivered to waiters) or *failed* (with an exception
    raised inside waiting processes). Triggering is irreversible.
    """

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[List[Callable[["SimEvent"], None]]] = []
        self.value: Any = None
        self.exception: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        return self.triggered and self.exception is None

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully, delivering ``value``."""
        self._trigger(value, None)
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event with an exception for waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._trigger(None, exception)
        return self

    def _trigger(self, value: Any, exception: Optional[BaseException]) -> None:
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self.value = value
        self.exception = exception
        callbacks, self.callbacks = self.callbacks, None
        if exception is not None and not callbacks:
            # A failure nobody is waiting on yet: remember it so it
            # surfaces at engine.run() end instead of vanishing.
            self.engine._note_unobserved_failure(self)
        for callback in callbacks:
            self.engine._schedule(0, callback, self)

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Run ``callback(event)`` once the event triggers.

        If the event already triggered, the callback is scheduled for
        the current instant (it still runs through the event queue so
        ordering stays deterministic).
        """
        if self.triggered:
            if self.exception is not None:
                self.engine._forget_unobserved_failure(self)
            self.engine._schedule(0, callback, self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self.ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.engine.now}>"


class Timeout(SimEvent):
    """An event that succeeds ``delay`` time units after creation."""

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(engine)
        self.delay = delay
        engine._schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class Process(SimEvent):
    """A generator being driven by the engine.

    The process event itself triggers when the generator returns; its
    value is the generator's return value. Yield targets may be:

    * a :class:`SimEvent` (wait for it; resumed with its value, or the
      event's exception is raised inside the generator),
    * an ``int``/``float`` (shorthand for a timeout of that many cycles),
    * another generator (run as a sub-process and waited on).
    """

    def __init__(
        self,
        engine: "Engine",
        generator: Generator,
        name: str = "",
        daemon: bool = False,
    ) -> None:
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Daemon processes are service loops (ATE engines, DMAD
        # walkers) expected to wait forever; deadlock diagnosis
        # excludes them from the "blocked" report.
        self.daemon = daemon
        self._waiting_on: Optional[SimEvent] = None
        engine._register_process(self)
        if engine.tracer is not None:
            engine.tracer.process_started(self)
        engine._schedule(0, self._start, None)

    def _start(self, _ignored: Any) -> None:
        self._step(None, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            if self.engine.tracer is not None:
                self.engine.tracer.process_finished(self)
            return
        except BaseException as error:
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            # A failure nobody is waiting on must not vanish silently.
            has_waiters = bool(self.callbacks)
            self.fail(error)
            if self.engine.tracer is not None:
                self.engine.tracer.process_finished(self)
            if not has_waiters:
                # Surfacing immediately: no need to re-report at run() end.
                self.engine._forget_unobserved_failure(self)
                raise
            return
        event = self.engine._as_event(target)
        self._waiting_on = event
        event.add_callback(self._on_event)

    def _on_event(self, event: SimEvent) -> None:
        self._waiting_on = None
        if event.exception is not None:
            self._step(None, event.exception)
        else:
            self._step(event.value, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} at t={self.engine.now}>"


class AllOf(SimEvent):
    """Succeeds when every child event has succeeded.

    The value is the list of child values in the order given. Fails as
    soon as any child fails.
    """

    def __init__(self, engine: "Engine", events: Iterable[SimEvent]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed([])
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self.events])


class AnyOf(SimEvent):
    """Succeeds (or fails) when the first child event triggers.

    The value is ``(index, value)`` of the first child to trigger.
    """

    def __init__(self, engine: "Engine", events: Iterable[SimEvent]) -> None:
        super().__init__(engine)
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(self.events):
            event.add_callback(lambda ev, i=index: self._on_child(i, ev))

    def _on_child(self, index: int, event: SimEvent) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
        else:
            self.succeed((index, event.value))


class Engine:
    """The event loop: a time-ordered queue of callbacks.

    Ties are broken by insertion order, so simulations are fully
    deterministic for a fixed program.
    """

    def __init__(self) -> None:
        self.now: float = 0
        self._queue: List[tuple] = []
        self._sequence = 0
        self.watchdog: Optional[Watchdog] = None
        # Optional observability hook (repro.obs.Tracer). None keeps the
        # process start/finish paths to a single attribute test.
        self.tracer: Optional[Any] = None
        self._processes: List["Process"] = []
        self._process_prune_at = 256
        self._unobserved_failures: List[SimEvent] = []

    # -- scheduling ---------------------------------------------------

    def _schedule(self, delay: float, callback: Callable, argument: Any) -> None:
        heapq.heappush(
            self._queue, (self.now + delay, self._sequence, callback, argument)
        )
        self._sequence += 1

    # -- bookkeeping for diagnosis --------------------------------------

    def _register_process(self, process: "Process") -> None:
        self._processes.append(process)
        if len(self._processes) >= self._process_prune_at:
            self._processes = [
                p for p in self._processes if not p.triggered
            ]
            self._process_prune_at = max(256, 2 * len(self._processes))

    def blocked_processes(self) -> List["Process"]:
        """Pending non-daemon processes (for deadlock diagnosis)."""
        return [
            process
            for process in self._processes
            if not process.triggered and not process.daemon
        ]

    def _note_unobserved_failure(self, event: SimEvent) -> None:
        self._unobserved_failures.append(event)

    def _forget_unobserved_failure(self, event: SimEvent) -> None:
        try:
            self._unobserved_failures.remove(event)
        except ValueError:
            pass

    def _raise_unobserved_failures(self) -> None:
        if not self._unobserved_failures:
            return
        failures, self._unobserved_failures = self._unobserved_failures, []
        detail = "; ".join(
            f"{event!r}: {event.exception!r}" for event in failures
        )
        raise SimulationError(
            f"{len(failures)} failed event(s) were never observed by any "
            f"waiter: {detail}"
        )

    def _as_event(self, target: Any) -> SimEvent:
        if isinstance(target, SimEvent):
            return target
        if isinstance(target, (int, float)):
            return Timeout(self, target)
        if hasattr(target, "send") and hasattr(target, "throw"):
            return Process(self, target)
        raise SimulationError(f"cannot wait on {target!r}")

    # -- public API ---------------------------------------------------

    def event(self) -> SimEvent:
        """Create a new pending event."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event succeeding ``delay`` cycles from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator, name: str = "", daemon: bool = False
    ) -> Process:
        """Start driving ``generator`` as a process."""
        return Process(self, generator, name, daemon=daemon)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or ``until`` cycles have elapsed.

        Returns the simulation time at which the run stopped.
        """
        while self._queue:
            when, _seq, callback, argument = self._queue[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = when
            callback(argument)
            if self.watchdog is not None:
                self.watchdog.check(self)
        self._raise_unobserved_failures()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_until_complete(self, process: Process, limit: float = 10**15) -> Any:
        """Run until ``process`` finishes; return its value.

        Raises the process's exception if it failed, or
        :class:`SimulationError` if the queue drained without the
        process completing (a deadlock in the modelled system).
        """
        while not process.triggered:
            if not self._queue:
                raise DeadlockError(
                    f"deadlock: {process!r} never completed and no events "
                    f"remain",
                    blocked=self.blocked_processes(),
                )
            if self.now > limit:
                raise DeadlockError(
                    f"livelock: simulation exceeded limit of {limit} cycles",
                    blocked=self.blocked_processes(),
                )
            when, _seq, callback, argument = heapq.heappop(self._queue)
            self.now = when
            callback(argument)
            if self.watchdog is not None:
                self.watchdog.check(self)
        if process.exception is not None:
            raise process.exception
        return process.value
