"""Discrete-event simulation kernel.

Everything in the reproduction — dpCores, the DMS pipeline, the ATE
crossbar, DDR channels, and software tasks — is a *process*: a Python
generator driven by an :class:`Engine`. Processes yield events
(:class:`SimEvent`, timeouts, or other processes) and are resumed when
those events trigger. One simulated time unit is one dpCore clock cycle
(800 MHz on the 40 nm DPU).

The kernel is deliberately small (events, processes, a binary heap) so
that its behaviour is easy to audit; richer constructs (FIFO resources,
bandwidth servers, mailbox stores) are layered on top in
:mod:`repro.sim.resources`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Engine",
    "SimEvent",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class SimEvent:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, then is either *succeeded* (with an
    optional value delivered to waiters) or *failed* (with an exception
    raised inside waiting processes). Triggering is irreversible.
    """

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[List[Callable[["SimEvent"], None]]] = []
        self.value: Any = None
        self.exception: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        return self.triggered and self.exception is None

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully, delivering ``value``."""
        self._trigger(value, None)
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event with an exception for waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._trigger(None, exception)
        return self

    def _trigger(self, value: Any, exception: Optional[BaseException]) -> None:
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self.value = value
        self.exception = exception
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            self.engine._schedule(0, callback, self)

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Run ``callback(event)`` once the event triggers.

        If the event already triggered, the callback is scheduled for
        the current instant (it still runs through the event queue so
        ordering stays deterministic).
        """
        if self.triggered:
            self.engine._schedule(0, callback, self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self.ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.engine.now}>"


class Timeout(SimEvent):
    """An event that succeeds ``delay`` time units after creation."""

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(engine)
        self.delay = delay
        engine._schedule(delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class Process(SimEvent):
    """A generator being driven by the engine.

    The process event itself triggers when the generator returns; its
    value is the generator's return value. Yield targets may be:

    * a :class:`SimEvent` (wait for it; resumed with its value, or the
      event's exception is raised inside the generator),
    * an ``int``/``float`` (shorthand for a timeout of that many cycles),
    * another generator (run as a sub-process and waited on).
    """

    def __init__(self, engine: "Engine", generator: Generator, name: str = "") -> None:
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[SimEvent] = None
        engine._schedule(0, self._start, None)

    def _start(self, _ignored: Any) -> None:
        self._step(None, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            # A failure nobody is waiting on must not vanish silently.
            has_waiters = bool(self.callbacks)
            self.fail(error)
            if not has_waiters:
                raise
            return
        event = self.engine._as_event(target)
        self._waiting_on = event
        event.add_callback(self._on_event)

    def _on_event(self, event: SimEvent) -> None:
        self._waiting_on = None
        if event.exception is not None:
            self._step(None, event.exception)
        else:
            self._step(event.value, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} at t={self.engine.now}>"


class AllOf(SimEvent):
    """Succeeds when every child event has succeeded.

    The value is the list of child values in the order given. Fails as
    soon as any child fails.
    """

    def __init__(self, engine: "Engine", events: Iterable[SimEvent]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed([])
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self.events])


class AnyOf(SimEvent):
    """Succeeds (or fails) when the first child event triggers.

    The value is ``(index, value)`` of the first child to trigger.
    """

    def __init__(self, engine: "Engine", events: Iterable[SimEvent]) -> None:
        super().__init__(engine)
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(self.events):
            event.add_callback(lambda ev, i=index: self._on_child(i, ev))

    def _on_child(self, index: int, event: SimEvent) -> None:
        if self.triggered:
            return
        if event.exception is not None:
            self.fail(event.exception)
        else:
            self.succeed((index, event.value))


class Engine:
    """The event loop: a time-ordered queue of callbacks.

    Ties are broken by insertion order, so simulations are fully
    deterministic for a fixed program.
    """

    def __init__(self) -> None:
        self.now: float = 0
        self._queue: List[tuple] = []
        self._sequence = 0

    # -- scheduling ---------------------------------------------------

    def _schedule(self, delay: float, callback: Callable, argument: Any) -> None:
        heapq.heappush(
            self._queue, (self.now + delay, self._sequence, callback, argument)
        )
        self._sequence += 1

    def _as_event(self, target: Any) -> SimEvent:
        if isinstance(target, SimEvent):
            return target
        if isinstance(target, (int, float)):
            return Timeout(self, target)
        if hasattr(target, "send") and hasattr(target, "throw"):
            return Process(self, target)
        raise SimulationError(f"cannot wait on {target!r}")

    # -- public API ---------------------------------------------------

    def event(self) -> SimEvent:
        """Create a new pending event."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event succeeding ``delay`` cycles from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start driving ``generator`` as a process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or ``until`` cycles have elapsed.

        Returns the simulation time at which the run stopped.
        """
        while self._queue:
            time, _seq, callback, argument = self._queue[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._queue)
            self.now = time
            callback(argument)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_until_complete(self, process: Process, limit: float = 10**15) -> Any:
        """Run until ``process`` finishes; return its value.

        Raises the process's exception if it failed, or
        :class:`SimulationError` if the queue drained without the
        process completing (a deadlock in the modelled system).
        """
        while not process.triggered:
            if not self._queue:
                raise SimulationError(
                    f"deadlock: {process!r} never completed and no events remain"
                )
            if self.now > limit:
                raise SimulationError(f"simulation exceeded limit of {limit} cycles")
            time, _seq, callback, argument = heapq.heappop(self._queue)
            self.now = time
            callback(argument)
        if process.exception is not None:
            raise process.exception
        return process.value
