"""Discrete-event simulation kernel.

Everything in the reproduction — dpCores, the DMS pipeline, the ATE
crossbar, DDR channels, and software tasks — is a *process*: a Python
generator driven by an :class:`Engine`. Processes yield events
(:class:`SimEvent`, timeouts, or other processes) and are resumed when
those events trigger. One simulated time unit is one dpCore clock cycle
(800 MHz on the 40 nm DPU).

The kernel is deliberately small (events, processes, a binary heap) so
that its behaviour is easy to audit; richer constructs (FIFO resources,
bandwidth servers, mailbox stores) are layered on top in
:mod:`repro.sim.resources`.

Host-speed notes
----------------
This module is the hot path of every benchmark, so it trades a little
verbosity for constant-factor wins that are invisible to the modelled
system (pinned bit-exact by ``tests/test_equivalence.py``):

* every event class uses ``__slots__`` and inlines its base
  initialiser, so event churn does not touch instance ``__dict__``s;
* trigger paths push ``(time, seq, callback, argument)`` entries on the
  heap directly in a batch instead of calling :meth:`Engine._schedule`
  once per waiter — the *order* of entries is identical, only the
  per-entry Python overhead goes away;
* processes cache the bound ``send``/``throw``/resume callables once at
  spawn instead of re-binding them on every yield;
* the run loops hoist the queue, ``heappop`` and the watchdog into
  locals and test ``event.callbacks is None`` directly rather than via
  the ``triggered`` property;
* cancelled timers (:meth:`Timeout.cancel`) use lazy deletion: the heap
  entry stays (so simulated time still advances through it exactly as
  before) but fires as a no-op instead of scheduling stale callbacks.

Dispatch *order* is sacred: callbacks of a triggered event are always
scheduled through the heap at the current instant, never invoked
inline, because an inline call would run ahead of earlier same-time
entries and change modelled interleavings.
"""

from __future__ import annotations

import heapq
import time
from itertools import count
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Engine",
    "SimEvent",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "DeadlockError",
    "Watchdog",
]

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. double-trigger)."""


class DeadlockError(SimulationError):
    """The modelled system can make no progress.

    Raised when the event queue drains while processes still wait
    (deadlock), or when a :class:`Watchdog` budget is exceeded
    (livelock). ``blocked`` names the stuck processes so the failure
    is diagnosable rather than a silent hang.
    """

    def __init__(self, message: str, blocked: Iterable["Process"] = ()) -> None:
        self.blocked = list(blocked)
        if self.blocked:
            detail = "; ".join(
                f"{process.name} waiting on {process._waiting_on!r}"
                for process in self.blocked
            )
            message = f"{message} [blocked: {detail}]"
        super().__init__(message)


class Watchdog:
    """Livelock guard: bounds on events processed and host wall time.

    Attach with ``engine.watchdog = Watchdog(...)`` *before* calling
    ``run``/``run_until_complete`` (the run loops sample the watchdog
    once at entry); the engine calls :meth:`check` once per dispatched
    event. Exceeding either budget raises :class:`DeadlockError`
    naming the still-pending processes. The wall clock (host
    ``time.monotonic``) never influences simulated behaviour — it can
    only abort a runaway simulation.
    """

    def __init__(
        self,
        max_events: Optional[int] = None,
        max_wall_seconds: Optional[float] = None,
        wall_check_interval: int = 4096,
    ) -> None:
        if max_events is not None and max_events <= 0:
            raise SimulationError(f"max_events must be positive: {max_events}")
        if max_wall_seconds is not None and max_wall_seconds <= 0:
            raise SimulationError(
                f"max_wall_seconds must be positive: {max_wall_seconds}"
            )
        self.max_events = max_events
        self.max_wall_seconds = max_wall_seconds
        self.wall_check_interval = wall_check_interval
        self.events_dispatched = 0
        self._started_at: Optional[float] = None

    def check(self, engine: "Engine") -> None:
        self.events_dispatched += 1
        if self.max_events is not None and self.events_dispatched > self.max_events:
            raise DeadlockError(
                f"livelock: watchdog event budget of {self.max_events} "
                f"exceeded at t={engine.now}",
                blocked=engine.blocked_processes(),
            )
        if self.max_wall_seconds is None:
            return
        if self._started_at is None:
            self._started_at = time.monotonic()
        if self.events_dispatched % self.wall_check_interval == 0:
            elapsed = time.monotonic() - self._started_at
            if elapsed > self.max_wall_seconds:
                raise DeadlockError(
                    f"livelock: watchdog wall-clock budget of "
                    f"{self.max_wall_seconds} s exceeded at t={engine.now}",
                    blocked=engine.blocked_processes(),
                )


# Sentinel stored in ``Timeout.exception`` by :meth:`Timeout.cancel` so
# the pending heap entry can recognise a lazily-deleted timer.
_CANCELLED = SimulationError("timeout cancelled")


class SimEvent:
    """A one-shot occurrence at a point in simulated time.

    An event starts *pending*, then is either *succeeded* (with an
    optional value delivered to waiters) or *failed* (with an exception
    raised inside waiting processes). Triggering is irreversible.

    ``callbacks is None`` is the canonical "already triggered" test on
    hot paths; the :attr:`triggered` property is the readable spelling.
    """

    __slots__ = ("engine", "callbacks", "value", "exception")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[List[Callable[["SimEvent"], None]]] = []
        self.value: Any = None
        self.exception: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        return self.callbacks is None and self.exception is None

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger the event successfully, delivering ``value``."""
        callbacks = self.callbacks
        if callbacks is None:
            raise SimulationError(f"{self!r} has already been triggered")
        self.value = value
        self.callbacks = None
        if callbacks:
            engine = self.engine
            queue = engine._queue
            now = engine.now
            next_seq = engine._next_seq
            for callback in callbacks:
                _heappush(queue, (now, next_seq(), callback, self))
        return self

    def fail(self, exception: BaseException) -> "SimEvent":
        """Trigger the event with an exception for waiters."""
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._trigger(None, exception)
        return self

    def _trigger(self, value: Any, exception: Optional[BaseException]) -> None:
        callbacks = self.callbacks
        if callbacks is None:
            raise SimulationError(f"{self!r} has already been triggered")
        self.value = value
        self.exception = exception
        self.callbacks = None
        if exception is not None and not callbacks:
            # A failure nobody is waiting on yet: remember it so it
            # surfaces at engine.run() end instead of vanishing.
            self.engine._note_unobserved_failure(self)
        engine = self.engine
        queue = engine._queue
        now = engine.now
        next_seq = engine._next_seq
        for callback in callbacks:
            _heappush(queue, (now, next_seq(), callback, self))

    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Run ``callback(event)`` once the event triggers.

        If the event already triggered, the callback is scheduled for
        the current instant (it still runs through the event queue so
        ordering stays deterministic).
        """
        callbacks = self.callbacks
        if callbacks is not None:
            callbacks.append(callback)
        else:
            if self.exception is not None:
                self.engine._forget_unobserved_failure(self)
            self.engine._schedule(0, callback, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self.ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.engine.now}>"


class Timeout(SimEvent):
    """An event that succeeds ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        self.engine = engine
        self.callbacks = []
        self.value = None
        self.exception = None
        self.delay = delay
        _heappush(
            engine._queue,
            (engine.now + delay, engine._next_seq(), self._fire, value),
        )

    def cancel(self) -> None:
        """Lazily cancel a still-pending timer.

        The heap entry is *not* removed — simulated time still advances
        through the timer's expiry exactly as before — but the expiry
        fires as a no-op instead of scheduling the (stale) waiter
        callbacks. Only cancel timers whose waiters have already moved
        on (e.g. the losing branch of an :class:`AnyOf` race); any
        remaining waiters would never be resumed.
        """
        if self.callbacks is not None:
            self.callbacks = None
            self.exception = _CANCELLED

    def _fire(self, value: Any) -> None:
        callbacks = self.callbacks
        if callbacks is None:
            if self.exception is _CANCELLED:
                return
            raise SimulationError(f"{self!r} has already been triggered")
        self.value = value
        self.callbacks = None
        if not callbacks:
            return
        if len(callbacks) == 1:
            # Single waiter (the overwhelmingly common case: a process
            # sleeping on its own timeout): dispatch inline. The engine
            # just popped this timer's heap entry, so the waiter runs at
            # the same instant it would otherwise be re-queued for.
            callbacks[0](self)
            return
        engine = self.engine
        queue = engine._queue
        now = engine.now
        next_seq = engine._next_seq
        for callback in callbacks:
            _heappush(queue, (now, next_seq(), callback, self))


class Process(SimEvent):
    """A generator being driven by the engine.

    The process event itself triggers when the generator returns; its
    value is the generator's return value. Yield targets may be:

    * a :class:`SimEvent` (wait for it; resumed with its value, or the
      event's exception is raised inside the generator),
    * an ``int``/``float`` (shorthand for a timeout of that many cycles),
    * another generator (run as a sub-process and waited on).
    """

    __slots__ = (
        "generator",
        "name",
        "daemon",
        "_waiting_on",
        "_send",
        "_throw",
        "_resume",
    )

    def __init__(
        self,
        engine: "Engine",
        generator: Generator,
        name: str = "",
        daemon: bool = False,
    ) -> None:
        self.engine = engine
        self.callbacks = []
        self.value = None
        self.exception = None
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Daemon processes are service loops (ATE engines, DMAD
        # walkers) expected to wait forever; deadlock diagnosis
        # excludes them from the "blocked" report.
        self.daemon = daemon
        self._waiting_on: Optional[SimEvent] = None
        self._send = generator.send
        self._throw = generator.throw
        self._resume = self._on_event
        engine._register_process(self)
        if engine.tracer is not None:
            engine.tracer.process_started(self)
        _heappush(engine._queue, (engine.now, engine._next_seq(), self._start, None))

    def _start(self, _ignored: Any) -> None:
        self._step(None, None)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        engine = self.engine
        send = self._send
        throw = self._throw
        while True:
            try:
                if exc is None:
                    target = send(value)
                else:
                    target = throw(exc)
            except StopIteration as stop:
                self.succeed(stop.value)
                if engine.tracer is not None:
                    engine.tracer.process_finished(self)
                return
            except BaseException as error:
                if isinstance(error, (KeyboardInterrupt, SystemExit)):
                    raise
                # A failure nobody is waiting on must not vanish silently.
                has_waiters = bool(self.callbacks)
                self.fail(error)
                if engine.tracer is not None:
                    engine.tracer.process_finished(self)
                if not has_waiters:
                    # Surfacing immediately: no need to re-report at run() end.
                    engine._forget_unobserved_failure(self)
                    raise
                return
            if isinstance(target, SimEvent):
                event = target
            elif isinstance(target, (int, float)):
                event = Timeout(engine, target)
            elif hasattr(target, "send") and hasattr(target, "throw"):
                event = Process(engine, target)
            else:
                raise SimulationError(f"cannot wait on {target!r}")
            callbacks = event.callbacks
            if callbacks is not None:
                self._waiting_on = event
                callbacks.append(self._resume)
                return
            # Fast resume: the yielded event has already triggered
            # (a store put/get satisfied immediately, a free resource
            # slot, an event-file flag already in the right state), so
            # loop straight back into the generator instead of taking a
            # heap round-trip at the current instant. Time does not
            # advance; only host work is saved.
            exception = event.exception
            if exception is not None:
                engine._forget_unobserved_failure(event)
                value, exc = None, exception
            else:
                value, exc = event.value, None

    def _on_event(self, event: SimEvent) -> None:
        self._waiting_on = None
        exception = event.exception
        if exception is not None:
            self._step(None, exception)
        else:
            self._step(event.value, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} at t={self.engine.now}>"


class AllOf(SimEvent):
    """Succeeds when every child event has succeeded.

    The value is the list of child values in the order given. Fails as
    soon as any child fails.
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[SimEvent]) -> None:
        self.engine = engine
        self.callbacks = []
        self.value = None
        self.exception = None
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed([])
        on_child = self._on_child
        for event in self.events:
            event.add_callback(on_child)

    def _on_child(self, event: SimEvent) -> None:
        if self.callbacks is None:
            return
        if event.exception is not None:
            self.fail(event.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in self.events])


class AnyOf(SimEvent):
    """Succeeds (or fails) when the first child event triggers.

    The value is ``(index, value)`` of the first child to trigger.
    """

    __slots__ = ("events",)

    def __init__(self, engine: "Engine", events: Iterable[SimEvent]) -> None:
        self.engine = engine
        self.callbacks = []
        self.value = None
        self.exception = None
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")
        for index, event in enumerate(self.events):
            event.add_callback(lambda ev, i=index: self._on_child(i, ev))

    def _on_child(self, index: int, event: SimEvent) -> None:
        if self.callbacks is None:
            return
        if event.exception is not None:
            self.fail(event.exception)
        else:
            self.succeed((index, event.value))


class Engine:
    """The event loop: a time-ordered queue of callbacks.

    Ties are broken by insertion order (a monotone sequence number per
    heap entry), so simulations are fully deterministic for a fixed
    program. The loop is a plain binary heap drain: popping the next
    entry *is* the skip-ahead to the next populated instant — idle
    cycles between timer expiries cost nothing on the host.
    """

    def __init__(self) -> None:
        self.now: float = 0
        self._queue: List[tuple] = []
        self._next_seq = count().__next__
        self.watchdog: Optional[Watchdog] = None
        # Optional observability hook (repro.obs.Tracer). None keeps the
        # process start/finish paths to a single attribute test.
        self.tracer: Optional[Any] = None
        # Pending metrics-sampler ticks (repro.obs.metrics.MetricsHub).
        # Sampler ticks re-arm only while the queue holds *other* work;
        # this count lets several hubs sharing one engine (per-DPU hubs
        # in a cluster) distinguish each other's dormant-going ticks
        # from real events, so they never keep one another alive.
        self._metric_ticks = 0
        self._processes: List["Process"] = []
        self._process_prune_at = 256
        self._unobserved_failures: List[SimEvent] = []

    # -- scheduling ---------------------------------------------------

    def _schedule(self, delay: float, callback: Callable, argument: Any) -> None:
        _heappush(
            self._queue, (self.now + delay, self._next_seq(), callback, argument)
        )

    # -- bookkeeping for diagnosis --------------------------------------

    def _register_process(self, process: "Process") -> None:
        self._processes.append(process)
        if len(self._processes) >= self._process_prune_at:
            self._processes = [
                p for p in self._processes if p.callbacks is not None
            ]
            self._process_prune_at = max(256, 2 * len(self._processes))

    def blocked_processes(self) -> List["Process"]:
        """Pending non-daemon processes (for deadlock diagnosis)."""
        return [
            process
            for process in self._processes
            if process.callbacks is not None and not process.daemon
        ]

    def _note_unobserved_failure(self, event: SimEvent) -> None:
        self._unobserved_failures.append(event)

    def _forget_unobserved_failure(self, event: SimEvent) -> None:
        # list.remove is fine here: the list only holds failures not
        # yet observed by any waiter, which is empty in healthy runs
        # and a handful of entries under fault injection.
        try:
            self._unobserved_failures.remove(event)
        except ValueError:
            pass

    def _raise_unobserved_failures(self) -> None:
        if not self._unobserved_failures:
            return
        failures, self._unobserved_failures = self._unobserved_failures, []
        detail = "; ".join(
            f"{event!r}: {event.exception!r}" for event in failures
        )
        raise SimulationError(
            f"{len(failures)} failed event(s) were never observed by any "
            f"waiter: {detail}"
        )

    def _as_event(self, target: Any) -> SimEvent:
        if isinstance(target, SimEvent):
            return target
        if isinstance(target, (int, float)):
            return Timeout(self, target)
        if hasattr(target, "send") and hasattr(target, "throw"):
            return Process(self, target)
        raise SimulationError(f"cannot wait on {target!r}")

    # -- public API ---------------------------------------------------

    def event(self) -> SimEvent:
        """Create a new pending event."""
        return SimEvent(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event succeeding ``delay`` cycles from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator, name: str = "", daemon: bool = False
    ) -> Process:
        """Start driving ``generator`` as a process."""
        return Process(self, generator, name, daemon=daemon)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or ``until`` cycles have elapsed.

        Returns the simulation time at which the run stopped.
        """
        queue = self._queue
        pop = _heappop
        watchdog = self.watchdog
        if until is None and watchdog is None:
            while queue:
                when, _seq, callback, argument = pop(queue)
                self.now = when
                callback(argument)
        else:
            while queue:
                when = queue[0][0]
                if until is not None and when > until:
                    self.now = until
                    return until
                _when, _seq, callback, argument = pop(queue)
                self.now = when
                callback(argument)
                if watchdog is not None:
                    watchdog.check(self)
        self._raise_unobserved_failures()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_until_complete(self, process: Process, limit: float = 10**15) -> Any:
        """Run until ``process`` finishes; return its value.

        Raises the process's exception if it failed, or
        :class:`SimulationError` if the queue drained without the
        process completing (a deadlock in the modelled system).
        """
        queue = self._queue
        pop = _heappop
        watchdog = self.watchdog
        if watchdog is None:
            while process.callbacks is not None:
                if not queue:
                    raise DeadlockError(
                        f"deadlock: {process!r} never completed and no events "
                        f"remain",
                        blocked=self.blocked_processes(),
                    )
                if self.now > limit:
                    raise DeadlockError(
                        f"livelock: simulation exceeded limit of {limit} cycles",
                        blocked=self.blocked_processes(),
                    )
                when, _seq, callback, argument = pop(queue)
                self.now = when
                callback(argument)
        else:
            while process.callbacks is not None:
                if not queue:
                    raise DeadlockError(
                        f"deadlock: {process!r} never completed and no events "
                        f"remain",
                        blocked=self.blocked_processes(),
                    )
                if self.now > limit:
                    raise DeadlockError(
                        f"livelock: simulation exceeded limit of {limit} cycles",
                        blocked=self.blocked_processes(),
                    )
                when, _seq, callback, argument = pop(queue)
                self.now = when
                callback(argument)
                watchdog.check(self)
        if process.exception is not None:
            raise process.exception
        return process.value
