"""Compiled-plan and result caches with catalog-version invalidation.

Both caches key on ``(query name, catalog version)``.
:class:`~repro.apps.sql.ir.Catalog` bumps its monotone ``version`` on
every mutation (``update_column`` / ``bump_version``), so a cached
plan or result can never be served against newer data: the lookup key
simply stops matching and the entry ages out of the LRU. ``put``
additionally drops same-query entries from older versions eagerly,
counting them as ``invalidations`` so the serving report can show
cache churn caused by catalog writes (as opposed to capacity
evictions).

Byte-equality contract: a result-cache hit returns the exact tuple
the cluster produced for that (query, version) — the serving layer
never recomputes, transcodes, or truncates it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

__all__ = ["PlanCache", "ResultCache"]


class _LruCache:
    """Version-aware LRU shared by the plan and result caches."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Tuple[str, int], Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str, version: int) -> Optional[Any]:
        key = (name, int(version))
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, name: str, version: int, value: Any) -> None:
        version = int(version)
        # A write at version v supersedes every *older* version of the
        # same query: drop them now rather than letting stale entries
        # squat in the LRU until capacity pressure finds them. Strictly
        # older only — a put carrying an old catalog_version (a plan
        # compiled before an interleaved catalog bump) must not evict
        # a newer-version entry.
        stale = [key for key in self._entries
                 if key[0] == name and key[1] < version]
        for key in stale:
            del self._entries[key]
            self.invalidations += 1
        self._entries[(name, version)] = value
        self._entries.move_to_end((name, version))
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": len(self._entries),
        }


class PlanCache(_LruCache):
    """LRU of :class:`~repro.apps.sql.physical.CompiledQuery` objects.

    A hit skips the planner entirely (the front end charges
    ``plan_compile_cycles`` only on a miss). Because
    ``CompiledQuery.catalog_version`` is stamped at lowering time, the
    cached plan's ``batch_key`` stays consistent with the version it
    was compiled against.
    """

    def __init__(self, capacity: int = 128) -> None:
        super().__init__(capacity)


class ResultCache(_LruCache):
    """LRU of finished result-row tuples, keyed like the plan cache.

    Only whole-query results are cached (the finish step — decode /
    sort / limit — already ran), so a hit is a pure lookup.
    """

    def __init__(self, capacity: int = 256) -> None:
        super().__init__(capacity)
