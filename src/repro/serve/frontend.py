"""Multi-tenant serving front end over a DPU cluster.

One host-driven discrete-event loop ties the pieces together: an
open-loop request stream (:mod:`repro.serve.workload`) lands in a
per-tenant :class:`~repro.runtime.admission.WeightedFairQueue`
weighted by QoS tier (:mod:`repro.serve.qos`); each tenant's private
:class:`~repro.runtime.admission.TokenBucket` gates *eligibility*
(a flow whose bucket is empty keeps its place in virtual time but
cannot be dequeued); dequeued queries go through a compiled-plan
cache and a result cache keyed on the catalog version
(:mod:`repro.serve.cache`); result-cache misses that share a fact
table at the same catalog version batch into one shared scan
(:func:`~repro.cluster.scaleout.cluster_batched_queries`) instead of
N separate jobs.

Because cluster jobs are synchronous coordinator-side calls that
drive the shared simulation engine internally, the front end is a
sequential dispatcher: it advances sim time explicitly (idle waits,
cache-hit service) or implicitly (running a job), never by wall
clock, so a serving run is bit-reproducible and — the contract the
tests enforce — every response is **byte-equal** to running that
query alone through
:func:`~repro.cluster.scaleout.cluster_compiled_query`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.sql import Table, compile_query
from ..cluster import cluster_batched_queries, cluster_compiled_query
from ..obs import NULL_HUB, LatencyDigest
from ..runtime.admission import TokenBucket, WeightedFairQueue
from .cache import PlanCache, ResultCache
from .qos import DEFAULT_TIERS, TierSpec
from .workload import QueryRequest

__all__ = ["CompletedRequest", "ServingFrontend", "ServingReport"]


@dataclass(frozen=True)
class CompletedRequest:
    """One served request: when it finished, how, and how long it took."""

    request: QueryRequest
    completion: float
    latency: float
    source: str  # "cache" | "direct" | "batch"
    batch_size: int = 1


@dataclass
class ServingReport:
    """Everything a serving run produced, ready for assertions.

    ``results`` holds the latest response rows per query name — the
    byte-equality oracle hook — and the digests are
    :class:`~repro.obs.metrics.LatencyDigest` objects (p50/p99/p999
    via ``quantile``).
    """

    records: List[CompletedRequest] = field(default_factory=list)
    overall: LatencyDigest = field(
        default_factory=lambda: LatencyDigest("serve.latency"))
    tenant_digests: Dict[str, LatencyDigest] = field(default_factory=dict)
    tier_digests: Dict[str, LatencyDigest] = field(default_factory=dict)
    results: Dict[str, Tuple] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    def quantiles(self, digest: Optional[LatencyDigest] = None
                  ) -> Dict[str, float]:
        digest = digest if digest is not None else self.overall
        return {
            "p50": digest.quantile(0.50),
            "p99": digest.quantile(0.99),
            "p999": digest.quantile(0.999),
        }


class ServingFrontend:
    """Sequential QoS-aware dispatcher over one cluster.

    ``queries`` maps query name -> SQL text; ``shards`` maps fact
    table name -> the row-sharded :class:`~repro.apps.sql.Table` list
    (one shard per DPU, carrying at least the union of the query
    mix's needed columns); ``tenants`` maps tenant name -> tier name.
    """

    def __init__(
        self,
        cluster,
        catalog,
        queries: Dict[str, str],
        shards: Dict[str, Sequence[Table]],
        tenants: Dict[str, str],
        tiers: Optional[Dict[str, TierSpec]] = None,
        plan_cache: Optional[PlanCache] = None,
        result_cache: Optional[ResultCache] = None,
        batching: bool = True,
        caching: bool = True,
        max_batch: int = 8,
        cache_hit_cycles: float = 500.0,
        plan_compile_cycles: float = 2000.0,
        hub=NULL_HUB,
    ) -> None:
        self.cluster = cluster
        self.catalog = catalog
        self.queries = dict(queries)
        self.shards = {fact: list(tables) for fact, tables in shards.items()}
        self.tiers = dict(tiers) if tiers is not None else dict(DEFAULT_TIERS)
        self.tenants = dict(tenants)
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.result_cache = (result_cache if result_cache is not None
                             else ResultCache())
        self.batching = bool(batching)
        self.caching = bool(caching)
        self.max_batch = int(max_batch)
        self.cache_hit_cycles = float(cache_hit_cycles)
        self.plan_compile_cycles = float(plan_compile_cycles)
        self.hub = hub
        self.queue = WeightedFairQueue()
        self.buckets: Dict[str, TokenBucket] = {}
        for tenant, tier_name in self.tenants.items():
            tier = self.tiers[tier_name]
            self.queue.register(tenant, tier.weight)
            self.buckets[tenant] = TokenBucket(
                tier.rate_per_kcycle, tier.burst)

    # -- engine plumbing ------------------------------------------------
    def _advance(self, cycles: float) -> None:
        if cycles <= 0:
            return
        engine = self.cluster.engine

        def waiter():
            yield engine.timeout(cycles)

        engine.run_until_complete(engine.process(waiter()))

    def _take_token(self, tenant: str, now: float) -> None:
        """Consume one submission token; every dequeue path first
        proved eligibility (``cycles_until_available == 0``), so a
        failed take means the eligibility map and the bucket state
        disagree — a rate-limit bypass that must not pass silently."""
        if not self.buckets[tenant].try_take(now):
            raise RuntimeError(
                f"tenant {tenant!r} dequeued without an available token "
                f"at cycle {now}: eligibility map out of sync with its "
                "bucket")

    # -- plan / result plumbing -----------------------------------------
    def _compiled(self, name: str):
        """Plan-cache lookup; a miss runs the cost-based planner and
        charges ``plan_compile_cycles`` of frontend time."""
        compiled = self.plan_cache.get(name, self.catalog.version)
        if compiled is None:
            compiled = compile_query(self.queries[name], self.catalog, name)
            self.plan_cache.put(name, self.catalog.version, compiled)
            self._advance(self.plan_compile_cycles)
        return compiled

    def _record(self, request: QueryRequest, source: str,
                batch_size: int, report: ServingReport) -> None:
        completion = self.cluster.engine.now
        latency = completion - request.arrival
        report.records.append(CompletedRequest(
            request=request, completion=completion, latency=latency,
            source=source, batch_size=batch_size))
        report.overall.add(latency)
        report.tenant_digests.setdefault(
            request.tenant,
            LatencyDigest(f"serve.tenant.{request.tenant}.latency"),
        ).add(latency)
        report.tier_digests.setdefault(
            request.tier,
            LatencyDigest(f"serve.tier.{request.tier}.latency"),
        ).add(latency)
        self.hub.observe(f"serve.tenant.{request.tenant}.latency", latency)
        self.hub.observe(f"serve.tier.{request.tier}.latency", latency)

    def _serve_cached(self, request: QueryRequest, rows: Tuple,
                      report: ServingReport) -> None:
        self._advance(self.cache_hit_cycles)
        report.results[request.query] = rows
        report.counters["cache_hits"] = report.counters.get(
            "cache_hits", 0) + 1
        self._record(request, "cache", 1, report)

    # -- the serving loop -----------------------------------------------
    def run(self, requests: Sequence[QueryRequest]) -> ServingReport:
        pending = sorted(requests, key=lambda r: (r.arrival, r.index))
        report = ServingReport()
        report.counters["requests"] = len(pending)
        engine = self.cluster.engine
        cursor = 0

        def admit_arrivals() -> int:
            nonlocal cursor
            while (cursor < len(pending)
                   and pending[cursor].arrival <= engine.now):
                request = pending[cursor]
                self.queue.push(request.tenant, request)
                cursor += 1
            return cursor

        while cursor < len(pending) or len(self.queue):
            admit_arrivals()
            now = engine.now
            eligible = {
                flow: self.buckets[flow].cycles_until_available(now) == 0.0
                for flow in self.queue.flows()
            }
            popped = self.queue.pop(eligible)
            if popped is None:
                # Nothing runnable: sleep until the next arrival or
                # the earliest backlogged tenant's bucket refills.
                waits = []
                if cursor < len(pending):
                    waits.append(pending[cursor].arrival - now)
                for flow in self.queue.flows():
                    waits.append(
                        self.buckets[flow].cycles_until_available(now))
                # An infinite wait (a bucket that can never refill to
                # a full token) must not reach _advance: filter it,
                # and if nothing finite remains the loop is stalled.
                waits = [w for w in waits if w != float("inf")]
                if not waits:
                    raise RuntimeError(
                        "serving loop stalled: backlogged tenants whose "
                        "token buckets can never refill and no pending "
                        "arrivals")
                self._advance(max(min(waits), 1.0))
                continue

            tenant, request = popped
            self._take_token(tenant, now)
            compiled = self._compiled(request.query)
            if self.caching:
                rows = self.result_cache.get(
                    request.query, self.catalog.version)
                if rows is not None:
                    self._serve_cached(request, rows, report)
                    continue

            # Result-cache miss: pull compatible eligible heads into a
            # shared-scan batch. Members that turn out to be cache
            # hits for an already-seen query are served from cache on
            # the spot; distinct queries dedup into one slot each.
            members: List[Tuple[QueryRequest, int]] = [(request, 0)]
            uniques = [compiled]
            slot_of = {request.query: 0}
            while self.batching and len(members) < self.max_batch:
                now = engine.now
                batchable = {}
                for flow in self.queue.flows():
                    # An empty bucket must be an *explicit* False:
                    # WeightedFairQueue.pop treats flows missing from
                    # the eligibility map as eligible, so skipping the
                    # flow here would let a token-starved tenant's
                    # head into the batch unchecked.
                    if self.buckets[flow].cycles_until_available(now) > 0:
                        batchable[flow] = False
                        continue
                    head = self.queue.peek(flow)
                    candidate = self._compiled(head.query)
                    batchable[flow] = (
                        candidate.batch_key == compiled.batch_key)
                next_popped = self.queue.pop(batchable)
                if next_popped is None:
                    break
                co_tenant, co_request = next_popped
                self._take_token(co_tenant, now)
                if co_request.query in slot_of:
                    members.append((co_request, slot_of[co_request.query]))
                    continue
                slot_of[co_request.query] = len(uniques)
                uniques.append(self._compiled(co_request.query))
                members.append((co_request, slot_of[co_request.query]))

            shards = self.shards[compiled.fact]
            if len(uniques) == 1:
                result = cluster_compiled_query(
                    self.cluster, uniques[0], self._project(uniques, shards))
                rows_by_slot = [result.value]
                source = "direct"
                report.counters["direct"] = report.counters.get(
                    "direct", 0) + 1
            else:
                result = cluster_batched_queries(
                    self.cluster, uniques, self._project(uniques, shards))
                rows_by_slot = list(result.value)
                source = "batch"
                report.counters["batches"] = report.counters.get(
                    "batches", 0) + 1
                report.counters["batched_queries"] = report.counters.get(
                    "batched_queries", 0) + len(uniques)

            for slot, (unique, rows) in enumerate(
                    zip(uniques, rows_by_slot)):
                report.results[unique.name] = rows
                if self.caching:
                    self.result_cache.put(
                        unique.name, unique.catalog_version, rows)
            for member, slot in members:
                self._record(member, source, len(members), report)

        report.counters["plan_cache"] = self.plan_cache.stats()
        report.counters["result_cache"] = self.result_cache.stats()
        return report

    def _project(self, uniques, shards: Sequence[Table]) -> List[Table]:
        """Project each full-column shard down to the batch's union of
        needed columns — the exact byte layout a standalone
        ``cluster_compiled_query`` run would ship."""
        union = list(dict.fromkeys(
            name for compiled in uniques for name in compiled.needed_columns))
        return [
            Table(shard.name,
                  {name: shard.columns[name] for name in union})
            for shard in shards
        ]
