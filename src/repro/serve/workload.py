"""Open-loop client generator for the serving benchmarks.

Requests arrive on a Poisson process (exponential interarrivals) that
does **not** wait for responses — the open-loop discipline that
exposes queueing collapse, unlike closed-loop clients whose think
time self-throttles offered load. Tenant popularity is Zipfian
(probability ∝ 1/rank^s over the tenant list order), the query mix is
uniform over the supplied names, and everything derives from one
``numpy`` Generator seed, so a workload is a pure function of
``(tenants, query_mix, seed, zipf_s, num_requests, mean
interarrival)`` and two runs replay byte-identical request streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["OpenLoopWorkload", "QueryRequest"]


@dataclass(frozen=True)
class QueryRequest:
    """One client query: who asks what, and when (in sim cycles)."""

    index: int
    tenant: str
    tier: str
    query: str
    arrival: float


class OpenLoopWorkload:
    """Deterministic Zipf-over-tenants x uniform-over-queries stream.

    ``tenants`` maps tenant name -> tier name; Zipf rank follows the
    dict's insertion order (first tenant is the most popular).
    """

    def __init__(
        self,
        tenants: Dict[str, str],
        query_mix: Sequence[str],
        seed: int = 0,
        zipf_s: float = 1.1,
    ) -> None:
        if not tenants:
            raise ValueError("workload needs at least one tenant")
        if not query_mix:
            raise ValueError("workload needs at least one query")
        self.tenants = dict(tenants)
        self.query_mix = list(query_mix)
        self.seed = int(seed)
        self.zipf_s = float(zipf_s)
        weights = np.array(
            [1.0 / (rank ** self.zipf_s)
             for rank in range(1, len(self.tenants) + 1)]
        )
        self._tenant_names = list(self.tenants)
        self._tenant_probs = weights / weights.sum()

    def generate(
        self,
        num_requests: int,
        mean_interarrival_cycles: float,
    ) -> List[QueryRequest]:
        """Draw ``num_requests`` arrivals at the given offered load
        (mean cycles between arrivals across *all* tenants)."""
        if mean_interarrival_cycles <= 0:
            raise ValueError(
                f"mean interarrival must be positive: "
                f"{mean_interarrival_cycles}"
            )
        rng = np.random.default_rng(self.seed)
        requests: List[QueryRequest] = []
        arrival = 0.0
        for index in range(num_requests):
            arrival += float(rng.exponential(mean_interarrival_cycles))
            tenant = self._tenant_names[
                int(rng.choice(len(self._tenant_names),
                               p=self._tenant_probs))
            ]
            query = self.query_mix[int(rng.integers(len(self.query_mix)))]
            requests.append(QueryRequest(
                index=index,
                tenant=tenant,
                tier=self.tenants[tenant],
                query=query,
                arrival=arrival,
            ))
        return requests
