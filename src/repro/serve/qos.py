"""QoS tiers for the multi-tenant serving layer (docs/SERVING.md).

A tier bundles the two knobs the front end schedules with:

* ``weight`` — the tenant's share of service slots in the
  :class:`~repro.runtime.admission.WeightedFairQueue` (start-time
  fair queueing: over any busy interval a gold tenant at weight 8
  receives ~8x the slots of a bronze tenant at weight 1, with no
  starvation — a backlogged bronze head's finish tag ages until it
  wins);
* ``rate_per_kcycle`` / ``burst`` — the tenant's private
  :class:`~repro.runtime.admission.TokenBucket`, bounding how fast a
  single tenant can *submit* work regardless of its weight, so one
  tenant's open-loop flood cannot monopolize the queue between other
  tenants' arrivals.

Both mechanisms run on the simulation clock, so a serving run is
bit-reproducible for a fixed workload seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["BRONZE", "DEFAULT_TIERS", "GOLD", "SILVER", "TierSpec"]


@dataclass(frozen=True)
class TierSpec:
    """One QoS class: scheduler weight plus submission rate limit."""

    name: str
    weight: float
    rate_per_kcycle: float
    burst: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"tier weight must be positive: {self.weight}")
        if self.rate_per_kcycle <= 0:
            raise ValueError(
                f"tier refill rate must be positive: {self.rate_per_kcycle}"
            )
        # One dequeue costs one token; a bucket that can never hold a
        # full token reports an infinite refill wait and would hang
        # the serving loop's idle branch.
        if self.burst < 1.0:
            raise ValueError(
                f"tier burst must be at least one token: {self.burst}")


# Default ladder: weights in the paper-ish 8:4:1 ratio; token rates
# sized against the ~50-100 kcycle cluster query jobs the benchmarks
# run, so bronze is submission-limited well before gold.
GOLD = TierSpec("gold", weight=8.0, rate_per_kcycle=0.16, burst=4.0)
SILVER = TierSpec("silver", weight=4.0, rate_per_kcycle=0.08, burst=2.0)
BRONZE = TierSpec("bronze", weight=1.0, rate_per_kcycle=0.04, burst=1.0)

DEFAULT_TIERS: Dict[str, TierSpec] = {
    tier.name: tier for tier in (GOLD, SILVER, BRONZE)
}
