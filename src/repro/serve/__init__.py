"""Multi-tenant serving layer: QoS tiers, caches, shared-scan batching.

See docs/SERVING.md for the full design; the pieces are

* :mod:`repro.serve.qos` — tier specs (scheduler weight + per-tenant
  token bucket);
* :mod:`repro.serve.workload` — deterministic open-loop client
  generator (Zipfian tenants x uniform query mix);
* :mod:`repro.serve.cache` — plan/result LRUs with catalog-version
  invalidation;
* :mod:`repro.serve.frontend` — the dispatcher tying them to
  :func:`~repro.cluster.scaleout.cluster_batched_queries`.
"""

from .cache import PlanCache, ResultCache
from .frontend import CompletedRequest, ServingFrontend, ServingReport
from .qos import BRONZE, DEFAULT_TIERS, GOLD, SILVER, TierSpec
from .workload import OpenLoopWorkload, QueryRequest

__all__ = [
    "BRONZE",
    "CompletedRequest",
    "DEFAULT_TIERS",
    "GOLD",
    "OpenLoopWorkload",
    "PlanCache",
    "QueryRequest",
    "ResultCache",
    "SILVER",
    "ServingFrontend",
    "ServingReport",
    "TierSpec",
]
