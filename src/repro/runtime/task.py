"""Cooperative task helpers (paper §4).

The DPU runtime schedules application code to completion on each
dpCore — no preemption, with only well-known interrupt sources (ATE
software RPCs, mailbox messages, timers). Kernels in this codebase
are Python generators driven by the simulator; these helpers cover
the recurring shapes: static range partitioning across cores, chunk
iteration, and per-core tiling of DMEM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["static_partition", "chunk_ranges", "DmemLayout"]


def static_partition(total: int, num_parts: int, part: int) -> Tuple[int, int]:
    """Contiguous ``[start, stop)`` share of ``total`` for ``part``.

    Remainder items go to the lowest-numbered parts, so shares differ
    by at most one — the static schedule most kernels start from.
    """
    if num_parts <= 0:
        raise ValueError(f"num_parts must be positive: {num_parts}")
    if not 0 <= part < num_parts:
        raise ValueError(f"part {part} outside 0..{num_parts - 1}")
    base, remainder = divmod(total, num_parts)
    start = part * base + min(part, remainder)
    stop = start + base + (1 if part < remainder else 0)
    return start, stop


def chunk_ranges(start: int, stop: int, chunk: int) -> Iterator[Tuple[int, int]]:
    """Yield ``[lo, hi)`` windows of at most ``chunk`` items."""
    if chunk <= 0:
        raise ValueError(f"chunk must be positive: {chunk}")
    position = start
    while position < stop:
        yield position, min(position + chunk, stop)
        position = min(position + chunk, stop)


@dataclass(frozen=True)
class DmemLayout:
    """A simple bump allocator over one core's 32 KB DMEM.

    Query compilers on the DPU divide DMEM between input/output
    buffers, metadata and hash tables (§5.3); this helper hands out
    aligned regions and raises before anything overlaps.
    """

    size: int = 32 * 1024

    def __post_init__(self) -> None:
        object.__setattr__(self, "_cursor", [0])

    def take(self, nbytes: int, align: int = 8) -> int:
        """Reserve ``nbytes``; returns the DMEM offset."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive: {nbytes}")
        cursor = self._cursor[0]
        cursor = -(-cursor // align) * align
        if cursor + nbytes > self.size:
            raise MemoryError(
                f"DMEM layout overflow: need {nbytes} at {cursor}, "
                f"have {self.size}"
            )
        self._cursor[0] = cursor + nbytes
        return cursor

    @property
    def used(self) -> int:
        return self._cursor[0]

    @property
    def remaining(self) -> int:
        return self.size - self._cursor[0]
