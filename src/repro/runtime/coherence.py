"""Software-coherence protocol checker (paper §4).

With no hardware coherence, the DPU team built "debugging tools that
identify data races and coherence violations" and a tool to quantify
*redundant* cache maintenance (programmers over-flushing out of
caution). This module is that tool for the model: kernels (and the
serialized-RPC runtime) report their cached reads/writes and
flush/invalidate operations, and the checker flags:

* **stale read** — core B reads a line core A wrote, without A
  flushing it and B invalidating its own copy in between;
* **lost write** — two cores hold the same line dirty concurrently;
* **false sharing** — distinct variables of different cores sharing a
  cache line (the compiler change in §4 aligns globals to line
  boundaries to kill these);
* **redundant maintenance** — flushes of clean lines / invalidates of
  lines never re-read, counted rather than flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["CoherenceChecker", "Violation"]

LINE = 64


@dataclass(frozen=True)
class Violation:
    kind: str  # "stale-read" | "lost-write" | "false-sharing"
    line: int
    reader: Optional[int]
    writer: Optional[int]
    detail: str


@dataclass
class _LineState:
    # Which cores have the line cached, and who holds it dirty.
    cached_by: Set[int] = field(default_factory=set)
    dirty_in: Set[int] = field(default_factory=set)
    last_writer: Optional[int] = None
    flushed_since_write: bool = True
    invalidated_since_flush: Dict[int, bool] = field(default_factory=dict)


class CoherenceChecker:
    """Tracks per-line sharing state and reports protocol violations."""

    def __init__(self) -> None:
        self._lines: Dict[int, _LineState] = {}
        self.violations: List[Violation] = []
        self.redundant_flushes = 0
        self.useful_flushes = 0
        self.redundant_invalidates = 0
        self.useful_invalidates = 0

    def _state(self, line: int) -> _LineState:
        return self._lines.setdefault(line, _LineState())

    @staticmethod
    def _lines_of(address: int, length: int) -> range:
        first = address // LINE
        last = (address + max(length, 1) - 1) // LINE
        return range(first, last + 1)

    # -- reported operations --------------------------------------------

    def read(self, core: int, address: int, length: int = 8) -> None:
        for line in self._lines_of(address, length):
            state = self._state(line)
            if (
                state.last_writer is not None
                and state.last_writer != core
                and not (
                    state.flushed_since_write
                    and state.invalidated_since_flush.get(core, core not in state.cached_by)
                )
            ):
                self.violations.append(
                    Violation(
                        kind="stale-read",
                        line=line,
                        reader=core,
                        writer=state.last_writer,
                        detail=(
                            f"core {core} read line {line:#x} written by core "
                            f"{state.last_writer} without flush+invalidate"
                        ),
                    )
                )
            state.cached_by.add(core)

    def write(self, core: int, address: int, length: int = 8) -> None:
        for line in self._lines_of(address, length):
            state = self._state(line)
            others_dirty = state.dirty_in - {core}
            if others_dirty:
                self.violations.append(
                    Violation(
                        kind="lost-write",
                        line=line,
                        reader=None,
                        writer=core,
                        detail=(
                            f"line {line:#x} dirty in cores "
                            f"{sorted(others_dirty)} while core {core} writes"
                        ),
                    )
                )
            if state.cached_by - {core} and state.last_writer != core:
                self.violations.append(
                    Violation(
                        kind="false-sharing",
                        line=line,
                        reader=None,
                        writer=core,
                        detail=(
                            f"core {core} writes line {line:#x} cached by "
                            f"{sorted(state.cached_by - {core})}"
                        ),
                    )
                )
            state.cached_by.add(core)
            state.dirty_in.add(core)
            state.last_writer = core
            state.flushed_since_write = False
            state.invalidated_since_flush = {}

    def flush(self, core: int, address: int, length: int) -> None:
        for line in self._lines_of(address, length):
            state = self._state(line)
            if core in state.dirty_in:
                state.dirty_in.discard(core)
                state.flushed_since_write = True
                self.useful_flushes += 1
            else:
                self.redundant_flushes += 1
            state.cached_by.discard(core)

    def invalidate(self, core: int, address: int, length: int) -> None:
        for line in self._lines_of(address, length):
            state = self._state(line)
            if core in state.cached_by or not state.invalidated_since_flush.get(
                core, False
            ):
                self.useful_invalidates += 1
            else:
                self.redundant_invalidates += 1
            state.cached_by.discard(core)
            state.dirty_in.discard(core)
            state.invalidated_since_flush[core] = True

    # -- reporting -----------------------------------------------------------

    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        lines = [
            f"coherence: {len(self.violations)} violation(s), "
            f"{self.useful_flushes} useful / {self.redundant_flushes} "
            f"redundant flushes, {self.useful_invalidates} useful / "
            f"{self.redundant_invalidates} redundant invalidates"
        ]
        lines.extend(f"  [{v.kind}] {v.detail}" for v in self.violations)
        return "\n".join(lines)
