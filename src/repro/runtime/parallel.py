"""Parallel programming primitives over the ATE (paper §2.3, §4).

The DPU has no cache coherence, so classic shared-memory primitives
are rebuilt on the ATE's hardware RPCs: every shared word is *owned*
by one dpCore (usually in its DMEM) and mutated only through remote
atomics, which the owner's ATE engine serializes. The runtime ports
"common parallel programming paradigms such as threads, task queues,
and independent loops" this way; here that is:

* :class:`SharedCounter` — an owned 64-bit counter (fetch-add/CAS);
* :class:`AteMutex` — CAS spinlock with bounded exponential backoff;
* :class:`AteBarrier` — sense-reversing barrier: arrivals fetch-add
  on the owner, the last arriver fans the release out with remote
  stores so each core spins only on its *own* DMEM flag;
* :class:`WorkQueue` — the §5.4 work-stealing scheme: a shared chunk
  cursor claimed with fetch-add (essential under the dpCore's
  variable-latency multiplier to avoid long tail latencies).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..core.dpu import DPU, CoreContext

__all__ = ["SharedCounter", "AteMutex", "AteBarrier", "WorkQueue"]

_SPIN_CYCLES = 24  # pause between local-flag polls / lock retries


class SharedCounter:
    """A 64-bit counter owned by one core's DMEM, mutated via ATE."""

    def __init__(self, dpu: DPU, owner: int, dmem_offset: int, initial: int = 0):
        self.dpu = dpu
        self.owner = owner
        self.address = dpu.address_map.dmem_address(owner, dmem_offset)
        dpu.scratchpads[owner].write_u64(dmem_offset, initial)

    def fetch_add(self, ctx: CoreContext, delta: int = 1):
        """Atomically add; generator returns the previous value."""
        value = yield from ctx.fetch_add(self.owner, self.address, delta)
        return value

    def load(self, ctx: CoreContext):
        value = yield from ctx.remote_load(self.owner, self.address)
        return value

    def store(self, ctx: CoreContext, value: int):
        yield from ctx.remote_store(self.owner, self.address, value)

    def peek(self) -> int:
        """Zero-time read for assertions/tests (not a modelled access)."""
        offset = self.address - self.dpu.address_map.dmem_window(self.owner).start
        return self.dpu.scratchpads[self.owner].read_u64(offset)


class AteMutex:
    """A spinlock built from remote compare-and-swap."""

    _UNLOCKED = 0

    def __init__(self, dpu: DPU, owner: int, dmem_offset: int) -> None:
        self.dpu = dpu
        self.owner = owner
        self.address = dpu.address_map.dmem_address(owner, dmem_offset)
        dpu.scratchpads[owner].write_u64(dmem_offset, self._UNLOCKED)

    def acquire(self, ctx: CoreContext):
        """Spin with exponential backoff until the lock is taken."""
        backoff = _SPIN_CYCLES
        while True:
            observed = yield from ctx.compare_swap(
                self.owner, self.address, self._UNLOCKED, ctx.core_id + 1
            )
            if observed == self._UNLOCKED:
                return
            yield from ctx.compute(backoff)
            backoff = min(backoff * 2, 1024)

    def release(self, ctx: CoreContext):
        yield from ctx.remote_store(self.owner, self.address, self._UNLOCKED)

    def holder(self) -> Optional[int]:
        """Current holder core id, or None (test/debug helper)."""
        offset = self.address - self.dpu.address_map.dmem_window(self.owner).start
        raw = self.dpu.scratchpads[self.owner].read_u64(offset)
        return None if raw == self._UNLOCKED else raw - 1


class AteBarrier:
    """Sense-reversing barrier across a fixed set of cores.

    Layout (all in participants' DMEMs): the owner holds an arrival
    counter; every participant holds a one-word release flag. The
    last arriver increments the sense and remote-stores it into each
    flag; everyone else polls their own flag locally.
    """

    def __init__(
        self,
        dpu: DPU,
        cores: Iterable[int],
        counter_offset: int,
        flag_offset: int,
    ) -> None:
        self.dpu = dpu
        self.cores: List[int] = list(cores)
        if not self.cores:
            raise ValueError("barrier needs at least one core")
        self.owner = self.cores[0]
        self.counter = SharedCounter(dpu, self.owner, counter_offset, 0)
        self.flag_offset = flag_offset
        self._sense = 0  # shared config, mirrored in each flag word
        for core in self.cores:
            dpu.scratchpads[core].write_u64(flag_offset, 0)

    def wait(self, ctx: CoreContext):
        """Block until every participant has arrived."""
        sense = self.dpu.scratchpads[ctx.core_id].read_u64(self.flag_offset)
        target = sense + 1
        arrived = yield from self.counter.fetch_add(ctx, 1)
        if arrived == len(self.cores) - 1:
            # Last arriver: reset the counter and release everyone
            # with posted stores (no reply stall on the fan-out).
            yield from self.counter.store(ctx, 0)
            for core in self.cores:
                if core == ctx.core_id:
                    self.dpu.scratchpads[core].write_u64(self.flag_offset, target)
                else:
                    address = self.dpu.address_map.dmem_address(
                        core, self.flag_offset
                    )
                    yield from ctx.posted_store(core, address, target)
            return
        while (
            self.dpu.scratchpads[ctx.core_id].read_u64(self.flag_offset) < target
        ):
            yield from ctx.compute(_SPIN_CYCLES)


class WorkQueue:
    """Dynamic chunk claiming with an ATE fetch-add cursor (§5.4)."""

    def __init__(
        self,
        dpu: DPU,
        owner: int,
        dmem_offset: int,
        num_chunks: int,
    ) -> None:
        if num_chunks < 0:
            raise ValueError(f"num_chunks must be >= 0: {num_chunks}")
        self.cursor = SharedCounter(dpu, owner, dmem_offset, 0)
        self.num_chunks = num_chunks

    def claim(self, ctx: CoreContext):
        """Claim the next chunk; generator returns its index or None."""
        index = yield from self.cursor.fetch_add(ctx, 1)
        if index >= self.num_chunks:
            return None
        return index
