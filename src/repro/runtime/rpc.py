"""The serialized-RPC programming pattern (paper §4).

On the non-coherent DPU, shared data structures are pinned to a
single owner dpCore and all manipulation goes through the ATE's
software RPCs behind ``dpu_serialized``. The programmer supplies
*visitors* enumerating the memory regions reachable from the argument
and return values; the runtime then:

(a) flushes the argument objects on the issuing core,
(b) invalidates the same on the remote core,
(c) invokes the RPC (the shared-data manipulator) on the remote core,
(d) flushes the return-address objects on the remote core,
(e) invalidates those regions on the issuing core when it returns.

Because every core addresses the same physical space, pointers (data
as well as functions) are passed by value inside the ATE message —
modelled here by registering the function under a name on the owner
and shipping plain-value args.

Every cache operation is also reported to an optional
:class:`~repro.runtime.coherence.CoherenceChecker`, which is how the
protocol's correctness is validated in tests.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Tuple

from ..core.dpu import DPU, CoreContext
from .coherence import CoherenceChecker

__all__ = ["install_serialized", "dpu_serialized", "Region"]

Region = Tuple[int, int]  # (physical address, length in bytes)


def _regions(visitor: Optional[Callable], payload: Any) -> List[Region]:
    if visitor is None:
        return []
    return list(visitor(payload))


def install_serialized(
    dpu: DPU,
    owner: int,
    name: str,
    manipulator: Callable,
    args_visitor: Optional[Callable] = None,
    return_visitor: Optional[Callable] = None,
    checker: Optional[CoherenceChecker] = None,
) -> None:
    """Install ``manipulator`` as a serialized RPC on ``owner``.

    ``manipulator(args)`` may be a plain function or a generator (to
    charge compute cycles on the owner). The wrapper performs steps
    (b) and (d) of the protocol on the owner's caches.
    """
    owner_ctx = dpu.context(owner)

    def wrapper(args: Any):
        for address, length in _regions(args_visitor, args):
            yield from owner_ctx.cache_invalidate(address, length)
            if checker is not None:
                checker.invalidate(owner, address, length)
        result = manipulator(args)
        if hasattr(result, "send") and hasattr(result, "throw"):
            result = yield from result
        for address, length in _regions(return_visitor, result):
            yield from owner_ctx.cache_flush(address, length)
            if checker is not None:
                checker.flush(owner, address, length)
        return result

    dpu.ate.install_handler(owner, name, wrapper)


def dpu_serialized(
    ctx: CoreContext,
    owner: int,
    name: str,
    args: Any = None,
    args_visitor: Optional[Callable] = None,
    return_visitor: Optional[Callable] = None,
    checker: Optional[CoherenceChecker] = None,
):
    """Invoke a serialized RPC; generator returns the result.

    Mirrors the paper's ``dpu_serialized`` call: the issuing core
    performs steps (a) and (e); the owner-side wrapper installed by
    :func:`install_serialized` performs (b) and (d); the ATE carries
    step (c).
    """
    for address, length in _regions(args_visitor, args):
        yield from ctx.cache_flush(address, length)
        if checker is not None:
            checker.flush(ctx.core_id, address, length)
    result = yield from ctx.software_rpc(owner, name, args)
    for address, length in _regions(return_visitor, result):
        yield from ctx.cache_invalidate(address, length)
        if checker is not None:
            checker.invalidate(ctx.core_id, address, length)
    return result
