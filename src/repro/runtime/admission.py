"""Admission control and load shedding for DPU job launch.

The paper's hardware applies flow control at every queue — DMAD
notify-event backpressure (§3.1), the ATE's one-outstanding-request
rule (§3.3) — but nothing stops *software* from oversubscribing the
chip: a coordinator that launches more concurrent jobs than DMEM and
the heap can hold turns a throughput plateau into a collapse. This
module is the software end of the backpressure chain:

* :class:`TokenBucket` — a deterministic, simulation-time token
  bucket bounding the job *arrival rate*;
* :class:`ConcurrencyLimiter` — a FIFO slot pool bounding jobs *in
  flight*;
* :class:`AdmissionController` — combines both behind one of three
  policies: ``queue`` (wait, with a bounded queue), ``shed`` (fail
  fast with a typed :class:`OverloadError` carrying occupancy
  context), or ``degrade`` (admit at reduced fanout so the job runs
  smaller rather than not at all);
* :class:`MemoryGovernor` — up-front memory grants for SQL operators,
  so an operator discovers pressure *before* allocating and can spill
  to DDR instead of dying mid-query.

Everything is driven by the simulation clock, so admission decisions
are bit-reproducible. A ``DPU`` or cluster coordinator with no
controller attached takes exactly the pre-existing code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..obs import NULL_HUB, NULL_TRACER
from ..sim import Engine, Resource, StatsRecorder

__all__ = [
    "AdmissionController",
    "Admission",
    "ConcurrencyLimiter",
    "MemoryGovernor",
    "OverloadError",
    "TokenBucket",
    "WeightedFairQueue",
]


class OverloadError(RuntimeError):
    """A job was shed because the system is saturated.

    Typed and structured: carries the shedding ``site``, simulation
    ``sim_time``, the ``limit`` that was hit, the ``queue_depth`` at
    decision time, and an ``occupancy`` snapshot, so coordinators can
    implement retry/degrade policies without parsing messages.
    """

    def __init__(
        self,
        message: str,
        *,
        site: str = "",
        sim_time: Optional[float] = None,
        limit: int = 0,
        queue_depth: int = 0,
        retry_count: int = 0,
        occupancy: Optional[Dict] = None,
    ) -> None:
        self.site = site
        self.sim_time = sim_time
        self.limit = limit
        self.queue_depth = queue_depth
        self.retry_count = retry_count
        self.occupancy = dict(occupancy) if occupancy else {}
        detail = []
        if site:
            detail.append(f"site={site}")
        if sim_time is not None:
            detail.append(f"t={sim_time:.0f}")
        if limit:
            detail.append(f"limit={limit}")
        if queue_depth:
            detail.append(f"queued={queue_depth}")
        if detail:
            message = f"{message} [{' '.join(detail)}]"
        super().__init__(message)


class TokenBucket:
    """Deterministic token bucket on the simulation clock.

    Refills continuously at ``rate_per_kcycle`` tokens per thousand
    cycles up to ``burst``. All arithmetic is in simulation time, so
    two identical runs make identical admission decisions.

    The level is always computed as one multiply from a fixed anchor
    (the last consumption or cap instant), never by accumulating many
    small ``elapsed * rate`` increments: a long run of tiny refills
    would otherwise drift away from one large refill in float and
    admit a different number of jobs depending on how often the
    bucket was *looked at*.
    """

    def __init__(self, rate_per_kcycle: float, burst: float = 1.0) -> None:
        if rate_per_kcycle < 0:
            raise ValueError(f"negative refill rate {rate_per_kcycle}")
        if burst <= 0:
            raise ValueError(f"burst must be positive: {burst}")
        self.rate = rate_per_kcycle / 1000.0  # tokens per cycle
        self.burst = float(burst)
        self.tokens = float(burst)
        # Level anchor: tokens held at sim time _anchor. Moves only on
        # consumption and on hitting the burst cap, so reads between
        # those events are pure functions of (anchor, now).
        self._anchor_tokens = float(burst)
        self._anchor = 0.0

    def _refill(self, now: float) -> None:
        if now > self._anchor:
            level = self._anchor_tokens + (now - self._anchor) * self.rate
            if level >= self.burst:
                # Cap reached: re-anchoring here is exact (the level
                # is a constant, not an accumulated float).
                self._anchor_tokens = self.burst
                self._anchor = now
                level = self.burst
            self.tokens = level

    def try_take(self, now: float, cost: float = 1.0) -> bool:
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            self._anchor_tokens = self.tokens
            self._anchor = max(self._anchor, now)
            return True
        return False

    def cycles_until_available(self, now: float, cost: float = 1.0) -> float:
        """Cycles from ``now`` until ``cost`` tokens will exist
        (``inf`` if the bucket cannot ever hold that many)."""
        self._refill(now)
        deficit = cost - self.tokens
        if deficit <= 0:
            return 0.0
        if self.rate <= 0 or cost > self.burst:
            return float("inf")
        return deficit / self.rate


class ConcurrencyLimiter:
    """FIFO pool of job slots bounding work in flight."""

    def __init__(self, engine: Engine, max_concurrent: int) -> None:
        self.slots = Resource(engine, max_concurrent)

    @property
    def running(self) -> int:
        return self.slots.in_use

    @property
    def queued(self) -> int:
        return self.slots.queue_depth

    @property
    def limit(self) -> int:
        return self.slots.capacity

    def acquire(self):
        return self.slots.acquire()

    def release(self) -> None:
        self.slots.release()


class WeightedFairQueue:
    """Start-time fair queueing across weighted flows (SFQ).

    The serving layer's replacement for a single global FIFO: each
    flow (tenant) owns a FIFO of queued items, and the next item to
    run is the head of the flow with the smallest virtual *finish
    tag*. A flow of weight ``w`` accumulates virtual time at ``1/w``
    per dequeued slot, so over any busy interval flows receive service
    slots in proportion to their weights — a gold tenant at weight 8
    gets ~8x the slots of a bronze tenant at weight 1 — while an idle
    flow builds up no credit it could later burst with (its next tag
    starts at the current virtual time, the SFQ start-time rule).

    Everything is driven by explicit ``pop`` calls from a
    deterministic scheduler loop, so two identical runs dequeue in
    identical order; ties break on (finish tag, flow name).
    """

    def __init__(self) -> None:
        self._weights: Dict[str, float] = {}
        self._queues: Dict[str, list] = {}
        self._finish: Dict[str, float] = {}
        self._vtime = 0.0
        self._size = 0

    def register(self, flow: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise ValueError(f"flow weight must be positive: {weight}")
        self._weights[flow] = float(weight)
        self._queues.setdefault(flow, [])
        self._finish.setdefault(flow, 0.0)

    def push(self, flow: str, item) -> None:
        if flow not in self._weights:
            self.register(flow)
        # SFQ tag assignment happens at enqueue: start at the current
        # virtual time (or the flow's last finish if it is backlogged)
        # and finish one weighted slot later. The tag sticks to the
        # item, so a backlogged low-weight flow's claim on service
        # ages rather than being recomputed — no starvation.
        start = max(self._vtime, self._finish[flow])
        finish = start + 1.0 / self._weights[flow]
        self._finish[flow] = finish
        self._queues[flow].append((start, finish, item))
        self._size += 1

    def __len__(self) -> int:
        return self._size

    def depth(self, flow: str) -> int:
        return len(self._queues.get(flow, ()))

    def flows(self):
        return [flow for flow, queue in self._queues.items() if queue]

    def peek(self, flow: str):
        return self._queues[flow][0][2]

    def pop(self, eligible: Optional[Dict[str, bool]] = None):
        """Dequeue ``(flow, item)`` from the backlogged flow with the
        smallest virtual finish tag. ``eligible`` (flow -> bool)
        excludes flows whose head cannot run yet (e.g. an empty
        per-tenant token bucket); ``None`` considers every flow.
        Returns ``None`` when no eligible flow has queued work."""
        best = None
        for flow in sorted(self._queues):
            if not self._queues[flow]:
                continue
            if eligible is not None and not eligible.get(flow, True):
                continue
            finish = self._queues[flow][0][1]
            if best is None or finish < best[1]:
                best = (flow, finish)
        if best is None:
            return None
        flow, _finish = best
        start, _finish, item = self._queues[flow].pop(0)
        self._vtime = max(self._vtime, start)
        self._size -= 1
        return flow, item


@dataclass
class Admission:
    """An admitted job's ticket: how it was admitted and at what cost.

    ``fanout_scale`` is 1.0 for a full-strength admission; under the
    ``degrade`` policy a saturated controller admits with a scale in
    (0, 1) and the job should shrink its core fanout accordingly.
    """

    site: str
    waited_cycles: float = 0.0
    degraded: bool = False
    fanout_scale: float = 1.0

    def fanout(self, cores):
        """Apply the scale to a core list (at least one core kept)."""
        cores = list(cores)
        if not self.degraded or self.fanout_scale >= 1.0:
            return cores
        keep = max(1, int(len(cores) * self.fanout_scale))
        return cores[:keep]


class AdmissionController:
    """Gate for ``DPU.launch`` / cluster jobs: queue, shed, or degrade.

    Policies:

    * ``queue`` — wait (in simulation time) for a token and a slot;
      the wait queue itself is bounded by ``max_queue_depth``, beyond
      which even the queue policy sheds (unbounded queues are how
      overload turns into collapse);
    * ``shed`` — if a token or slot is not immediately available,
      raise :class:`OverloadError`;
    * ``degrade`` — admit immediately, but when the controller is
      saturated return a ticket asking the job to halve its fanout
      (a smaller job finishes and frees capacity sooner).
    """

    POLICIES = ("queue", "shed", "degrade")

    def __init__(
        self,
        engine: Engine,
        max_concurrent: int = 4,
        rate_per_kcycle: float = 0.0,
        burst: float = 1.0,
        policy: str = "queue",
        max_queue_depth: int = 64,
        degrade_scale: float = 0.5,
        stats: Optional[StatsRecorder] = None,
        name: str = "admission",
    ) -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}: {policy}")
        self.engine = engine
        self.policy = policy
        self.max_queue_depth = max_queue_depth
        self.degrade_scale = degrade_scale
        self.name = name
        self.limiter = ConcurrencyLimiter(engine, max_concurrent)
        self.bucket = (
            TokenBucket(rate_per_kcycle, burst) if rate_per_kcycle > 0 else None
        )
        self.stats = stats if stats is not None else StatsRecorder()
        # Observability hooks; DPU.enable_tracing swaps in a live
        # tracer, DPU.enable_metrics a live hub (wait-latency digest).
        self.trace = NULL_TRACER
        self.metrics = NULL_HUB
        self.admitted = 0
        self.shed = 0
        self.degraded = 0
        # Jobs the degrade policy admitted past the slot limit (they
        # run at reduced fanout instead of waiting for a slot).
        self._over_admitted = 0

    # -- introspection -----------------------------------------------------

    def occupancy(self) -> Dict:
        """Snapshot attached to every shed decision."""
        snap = {
            "running": self.limiter.running + self._over_admitted,
            "queued": self.limiter.queued,
            "limit": self.limiter.limit,
        }
        if self._over_admitted:
            snap["over_admitted"] = self._over_admitted
        if self.bucket is not None:
            snap["tokens"] = self.bucket.tokens
        return snap

    @property
    def saturated(self) -> bool:
        return self.limiter.running >= self.limiter.limit

    def _trace_decision(self, decision: str, site: str) -> None:
        if self.trace.enabled:
            self.trace.instant(f"{self.name}.{decision}", unit=self.name,
                               site=site, **self.occupancy())

    # -- admission (process world) -----------------------------------------

    def acquire(self, site: str = "job"):
        """Process generator: admit one job, returning its ticket.

        The caller owns a slot on success and must call
        :meth:`release` exactly once when the job retires.
        """
        began = self.engine.now
        degraded = False
        if self.policy == "shed":
            if self.saturated:
                self.shed += 1
                self.stats.count(f"{self.name}.shed", 1)
                self._trace_decision("shed", site)
                raise OverloadError(
                    f"{site} shed: all {self.limiter.limit} job slots busy",
                    site=site,
                    sim_time=self.engine.now,
                    limit=self.limiter.limit,
                    queue_depth=self.limiter.queued,
                    occupancy=self.occupancy(),
                )
            if self.bucket is not None and not self.bucket.try_take(began):
                self.shed += 1
                self.stats.count(f"{self.name}.shed", 1)
                self._trace_decision("shed", site)
                raise OverloadError(
                    f"{site} shed: arrival rate above admission budget",
                    site=site,
                    sim_time=self.engine.now,
                    limit=self.limiter.limit,
                    occupancy=self.occupancy(),
                )
        elif self.policy == "queue":
            if self.limiter.queued >= self.max_queue_depth:
                self.shed += 1
                self.stats.count(f"{self.name}.shed", 1)
                self._trace_decision("shed", site)
                raise OverloadError(
                    f"{site} shed: admission queue full "
                    f"({self.limiter.queued} waiting)",
                    site=site,
                    sim_time=self.engine.now,
                    limit=self.limiter.limit,
                    queue_depth=self.limiter.queued,
                    occupancy=self.occupancy(),
                )
            if self.bucket is not None:
                wait = self.bucket.cycles_until_available(began)
                if wait == float("inf"):
                    raise OverloadError(
                        f"{site} shed: request exceeds token burst",
                        site=site,
                        sim_time=self.engine.now,
                        occupancy=self.occupancy(),
                    )
                if wait > 0:
                    yield self.engine.timeout(wait)
                self.bucket.try_take(self.engine.now)
        over_commit = False
        if self.policy == "degrade":
            slotless = self.saturated
            token_less = (
                self.bucket is not None and not self.bucket.try_take(began)
            )
            degraded = slotless or token_less
            # A saturated degrade admission over-commits: the job runs
            # now at reduced fanout rather than waiting for a slot.
            over_commit = slotless
            if degraded:
                self.degraded += 1
                self.stats.count(f"{self.name}.degraded", 1)
                self._trace_decision("degrade", site)
        self.stats.peak(f"{self.name}.queue_peak", self.limiter.queued + 1)
        if over_commit:
            self._over_admitted += 1
        else:
            yield self.limiter.acquire()
        waited = self.engine.now - began
        if waited > 0:
            self.stats.count(f"{self.name}.wait_cycles", waited)
        if self.metrics.enabled:
            self.metrics.observe(f"{self.name}.wait_cycles", waited)
        self.admitted += 1
        self.stats.count(f"{self.name}.admitted", 1)
        self.stats.peak(
            f"{self.name}.running_peak",
            self.limiter.running + self._over_admitted,
        )
        if self.trace.enabled:
            if waited > 0:
                self.trace.complete_async(f"{self.name}.queue_wait",
                                          self.name, began, site=site)
            self.trace.counter(f"{self.name}.jobs", unit=self.name,
                               running=self.limiter.running
                               + self._over_admitted,
                               queued=self.limiter.queued)
        return Admission(
            site=site,
            waited_cycles=waited,
            degraded=degraded,
            fanout_scale=self.degrade_scale if degraded else 1.0,
        )

    def release(self) -> None:
        if self._over_admitted > 0:
            self._over_admitted -= 1
        else:
            self.limiter.release()


class MemoryGovernor:
    """Up-front memory grants so operators spill instead of dying.

    An operator declares its working-set need *before* allocating; a
    denied grant tells it to run with a smaller footprint (more waves
    / spilled partitions at modelled DMS cost) while producing
    byte-identical results. The governor bounds *reserved* bytes, a
    budget independent of (and typically below) physical capacity, so
    concurrent operators cannot jointly exhaust the heap.
    """

    def __init__(
        self,
        limit_bytes: int,
        stats: Optional[StatsRecorder] = None,
        name: str = "memgov",
    ) -> None:
        if limit_bytes <= 0:
            raise ValueError(f"grant budget must be positive: {limit_bytes}")
        self.limit_bytes = int(limit_bytes)
        self.granted_bytes = 0
        self.stats = stats if stats is not None else StatsRecorder()
        self.name = name
        self.denials = 0

    def try_grant(self, nbytes: int, site: str = "") -> bool:
        """Reserve ``nbytes``; False means run degraded (spill)."""
        if nbytes <= 0:
            raise ValueError(f"grant must be positive: {nbytes}")
        if self.granted_bytes + nbytes > self.limit_bytes:
            self.denials += 1
            self.stats.count(f"{self.name}.denied", 1)
            return False
        self.granted_bytes += nbytes
        self.stats.count(f"{self.name}.granted_bytes", nbytes)
        self.stats.peak(f"{self.name}.granted_peak", self.granted_bytes)
        return True

    def grant_or_largest(self, nbytes: int, floor: int, site: str = "") -> int:
        """Grant ``nbytes`` if possible, else the largest multiple of
        ``floor`` that fits (at least ``floor``). Returns the granted
        size; operators size their wave/partition buffers from it."""
        if self.try_grant(nbytes, site):
            return nbytes
        available = self.limit_bytes - self.granted_bytes
        scaled = max(floor, (available // floor) * floor)
        self.granted_bytes += scaled
        self.stats.count(f"{self.name}.granted_bytes", scaled)
        self.stats.peak(f"{self.name}.granted_peak", self.granted_bytes)
        return scaled

    def release_grant(self, nbytes: int) -> None:
        if nbytes > self.granted_bytes:
            raise ValueError(
                f"releasing {nbytes} B but only {self.granted_bytes} B granted"
            )
        self.granted_bytes -= nbytes

    def stats_snapshot(self) -> Dict:
        return {
            "limit_bytes": self.limit_bytes,
            "granted_bytes": self.granted_bytes,
            "denials": self.denials,
        }
