"""DPU software runtime: scheduling, ATE primitives, serialized RPC."""

from .admission import (
    Admission,
    AdmissionController,
    ConcurrencyLimiter,
    MemoryGovernor,
    OverloadError,
    TokenBucket,
)
from .coherence import CoherenceChecker, Violation
from .failover import resilient_launch, surviving_cores
from .parallel import AteBarrier, AteMutex, SharedCounter, WorkQueue
from .rpc import Region, dpu_serialized, install_serialized
from .task import DmemLayout, chunk_ranges, static_partition

__all__ = [
    "Admission",
    "AdmissionController",
    "AteBarrier",
    "AteMutex",
    "CoherenceChecker",
    "ConcurrencyLimiter",
    "DmemLayout",
    "MemoryGovernor",
    "OverloadError",
    "Region",
    "SharedCounter",
    "TokenBucket",
    "Violation",
    "WorkQueue",
    "chunk_ranges",
    "dpu_serialized",
    "install_serialized",
    "resilient_launch",
    "static_partition",
    "surviving_cores",
]
