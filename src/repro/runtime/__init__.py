"""DPU software runtime: scheduling, ATE primitives, serialized RPC."""

from .coherence import CoherenceChecker, Violation
from .failover import resilient_launch, surviving_cores
from .parallel import AteBarrier, AteMutex, SharedCounter, WorkQueue
from .rpc import Region, dpu_serialized, install_serialized
from .task import DmemLayout, chunk_ranges, static_partition

__all__ = [
    "AteBarrier",
    "AteMutex",
    "CoherenceChecker",
    "DmemLayout",
    "Region",
    "SharedCounter",
    "Violation",
    "WorkQueue",
    "chunk_ranges",
    "dpu_serialized",
    "install_serialized",
    "resilient_launch",
    "static_partition",
    "surviving_cores",
]
