"""Core-failure injection and failover scheduling.

A dpCore that takes a hard fault (the ``core.dead`` site, drawn once
per core at launch) stops fetching instructions but its *hardware*
stays alive: the ATE engine still serializes remote atomics on its
DMEM, and the DMAD still walks any already-pushed lists. That is the
property failover leans on — shared state owned by a dead core stays
reachable, so the §5.4 work-stealing scheme redistributes the dead
core's work for free: chunks are claimed from a shared fetch-add
cursor, a core that never runs simply never claims, and the
survivors drain the whole queue at proportionally reduced throughput.

:func:`resilient_launch` is the entry point: it draws the survivor
set and launches the kernel only there. Kernels written against a
:class:`~repro.runtime.parallel.WorkQueue` (e.g. the HLL sketcher)
then complete with bit-identical results — graceful degradation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..core.dpu import DPU, LaunchResult
from ..faults import FaultInjector

__all__ = ["surviving_cores", "resilient_launch"]


def surviving_cores(
    faults: FaultInjector, cores: Iterable[int]
) -> List[int]:
    """Draw the ``core.dead`` site once per core; return the living.

    At least one core always survives (a fully dead complex is a
    machine replacement, not a degraded launch): if every draw kills,
    the lowest-numbered core is revived.
    """
    cores = list(cores)
    survivors = [
        core
        for core in cores
        if not faults.roll("core.dead", detail=f"core {core}")
    ]
    if not survivors and cores:
        survivors = [cores[0]]
    return survivors


def resilient_launch(
    dpu: DPU,
    kernel,
    args: Sequence[Any] = (),
    cores: Optional[Iterable[int]] = None,
    per_core_args: Optional[Dict[int, Sequence[Any]]] = None,
    limit_cycles: float = 10**13,
) -> LaunchResult:
    """Launch ``kernel`` on the cores that survive fault injection.

    With fault injection disabled this is exactly :meth:`DPU.launch`.
    The kernel must tolerate a shrunken core set — dynamic work
    claiming (WorkQueue) qualifies; static partitioning by
    ``config.num_cores`` does not.
    """
    requested = list(cores) if cores is not None else list(dpu.config.core_ids)
    survivors = surviving_cores(dpu.faults, requested)
    if len(survivors) < len(requested):
        dpu.stats.count("runtime.dead_cores", len(requested) - len(survivors))
    return dpu.launch(
        kernel,
        args=args,
        cores=survivors,
        per_core_args=per_core_args,
        limit_cycles=limit_cycles,
    )
