"""Multi-DPU clusters, the A9 network path, and rack provisioning."""

from .network import FabricConfig, IBFabric
from .rack import PAPER_RACK, Cluster, RackSpec
from .scaleout import ScaleOutResult, cluster_filter_count, cluster_hll

__all__ = [
    "Cluster",
    "FabricConfig",
    "IBFabric",
    "PAPER_RACK",
    "RackSpec",
    "ScaleOutResult",
    "cluster_filter_count",
    "cluster_hll",
]
