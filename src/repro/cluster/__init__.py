"""Multi-DPU clusters, the A9 network path, and rack provisioning."""

from .network import FabricConfig, IBFabric
from .rack import PAPER_RACK, Cluster, RackSpec
from .recovery import (
    ClusterError,
    RecoveryConfig,
    RecoveryManager,
    RecoveryStats,
)
from .scaleout import (
    ScaleOutResult,
    cluster_batched_queries,
    cluster_compiled_query,
    cluster_filter_count,
    cluster_groupby,
    cluster_hll,
    cluster_partitioned_join_count,
    cluster_topk,
    cluster_tpch_q1,
)
from .shuffle import (
    ShuffleRackModel,
    ShuffleResult,
    partition_source,
    shuffle_cids,
    shuffle_exchange,
    shuffle_spec,
)

__all__ = [
    "Cluster",
    "ClusterError",
    "FabricConfig",
    "IBFabric",
    "PAPER_RACK",
    "RackSpec",
    "RecoveryConfig",
    "RecoveryManager",
    "RecoveryStats",
    "ScaleOutResult",
    "ShuffleRackModel",
    "ShuffleResult",
    "cluster_batched_queries",
    "cluster_compiled_query",
    "cluster_filter_count",
    "cluster_groupby",
    "cluster_hll",
    "cluster_partitioned_join_count",
    "cluster_topk",
    "cluster_tpch_q1",
    "partition_source",
    "shuffle_cids",
    "shuffle_exchange",
    "shuffle_spec",
]
