"""Multi-DPU clusters, the A9 network path, and rack provisioning."""

from .network import FabricConfig, IBFabric
from .rack import PAPER_RACK, Cluster, RackSpec
from .scaleout import (
    ScaleOutResult,
    cluster_filter_count,
    cluster_groupby,
    cluster_hll,
    cluster_partitioned_join_count,
    cluster_topk,
    cluster_tpch_q1,
)
from .shuffle import (
    ShuffleRackModel,
    ShuffleResult,
    shuffle_cids,
    shuffle_exchange,
    shuffle_spec,
)

__all__ = [
    "Cluster",
    "FabricConfig",
    "IBFabric",
    "PAPER_RACK",
    "RackSpec",
    "ScaleOutResult",
    "ShuffleRackModel",
    "ShuffleResult",
    "cluster_filter_count",
    "cluster_groupby",
    "cluster_hll",
    "cluster_partitioned_join_count",
    "cluster_topk",
    "cluster_tpch_q1",
    "shuffle_cids",
    "shuffle_exchange",
    "shuffle_spec",
]
