"""Partitioned exchange (shuffle) across a DPU cluster (paper §4).

The paper's system services scaled the §5 applications "across 500+
DPU clusters". Operators that redistribute data (group-by, join,
top-k) need an exchange: every DPU splits its shard by a hash of the
key so that all rows with the same key land on the same destination
DPU, then the shards cross the fabric all-to-all.

The exchange reuses the hardware the paper provides for exactly this
(§3.1's hash/range partitioning engine, Fig. 13):

1. **Partition (per source DPU, DMS hardware).** Core 0 drives
   DDR->DMS->DMEM partition chains with a ``PartitionSpec`` whose
   fanout is the DPU count and whose ``radix_shift`` inspects *high*
   CRC bits — the intra-DPU 32-way operators keep using the low bits,
   so the two partitioning levels nest without correlation. Each
   participating core drains its per-destination record buffer to a
   per-destination DRAM region between waves (DMEM->DDR), exactly the
   chained-output-buffer scheme of §5.3.

2. **Exchange (concurrent, A9s).** Core 0 mailboxes the region
   pointers to the local A9; the A9s run the all-to-all over the
   :class:`~repro.cluster.network.IBFabric` in a rotated schedule.
   The bulk bytes stay "in DRAM" — only simulated sizes cross the
   fabric model, which charges verbs overheads, link serialization,
   switch latency, receive credits and (under ``net.drop`` faults)
   retransmissions.

3. **Reassembly (host-side).** Each destination concatenates the
   row-major records it received (in source order, so results are
   deterministic) and splits them back into columns.

Under a chaos plan the exchange runs through
:meth:`~repro.cluster.recovery.RecoveryManager.run_exchange` instead:
the same partition kernel and slot space, but epoch-tagged and
restartable, surviving worker deaths, fabric partitions *and* the
death of the coordinating leader itself (the slot space never
changes — a dead slot owner's shard is re-partitioned on a survivor
from the durable host table).

:class:`ShuffleRackModel` extends the measured small-cluster numbers
to rack scale (2 -> 512 DPUs) analytically, the same way
:class:`~repro.cluster.rack.RackSpec` extends single-DPU bandwidth —
512 full DPU simulations would add no fidelity to the fabric math.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.sql.aggregate import _parse_records, _record_layout
from ..apps.streaming import ref_dtype
from ..core.mailbox import A9_ID
from ..dms.descriptor import (
    Descriptor,
    DescriptorType,
    PartitionMode,
    PartitionSpec,
)
from ..dms.partition import PartitionLayout, compute_cids
from .network import FabricConfig
from .rack import Cluster

__all__ = [
    "SHUFFLE_RADIX_SHIFT",
    "ShuffleResult",
    "ShuffleRackModel",
    "partition_source",
    "shuffle_spec",
    "shuffle_cids",
    "shuffle_exchange",
]

# The inter-DPU split inspects CRC bits 16.. while the intra-DPU
# operators (32-way group-by/join) inspect bits 0..4 and the software
# round bits 5..9 — disjoint windows of one hash, so nothing starves.
SHUFFLE_RADIX_SHIFT = 16

_DRAIN_EVENT = 13  # per-core DMEM->DDR completion event
_BUFFER_CAPACITY = 18 * 1024
_COUNT_OFFSET = 31 * 1024


def shuffle_spec(num_dpus: int) -> PartitionSpec:
    """The partition spec of an inter-DPU exchange (power-of-two
    fanout, high CRC bits)."""
    if num_dpus < 2 or num_dpus & (num_dpus - 1):
        raise ValueError(
            f"shuffle fanout must be a power of two >= 2: {num_dpus} "
            "(the hash engine indexes partitions by radix bits)"
        )
    return PartitionSpec(
        mode=PartitionMode.HASH,
        radix_bits=num_dpus.bit_length() - 1,
        radix_shift=SHUFFLE_RADIX_SHIFT,
    )


def shuffle_cids(keys: np.ndarray, num_dpus: int) -> np.ndarray:
    """Destination DPU per key — the same math the DMS engine applies
    (used host-side to size destination regions exactly)."""
    return compute_cids(keys, shuffle_spec(num_dpus))


@dataclass
class ShuffleResult:
    """One completed all-to-all exchange."""

    # Per destination DPU: the reassembled columns ({name: array}).
    columns: List[Dict[str, np.ndarray]]
    # Max per-DPU partition-kernel cycles (the phase is embarrassingly
    # parallel; the shared engine runs the launches in turn, so the
    # max — not the serial sum — models rack wall-clock).
    partition_cycles: float
    # Span of the concurrent A9 all-to-all on the shared clock.
    exchange_cycles: float
    rows_moved: int  # rows that crossed the fabric (self-partition excluded)
    bytes_moved: int


def _partition_kernel(dpu, refs, rows, num_dests, region_addrs, spec, layout):
    """Build the wave-driven partition kernel for one source DPU.

    Mirrors the §5.3 hardware-partitioned group-by driver: core 0
    pushes DDR->DMS (key first) -> DMS_TO_DMS -> DMS_TO_DMEM chains in
    DMEM-capacity waves; after each wave every participating core
    drains its record buffer to its destination's DRAM region."""
    dtypes = [ref_dtype(spec_) for _addr, spec_ in refs]
    widths = [dtype.itemsize for dtype in dtypes]
    record_width, _offsets = _record_layout(widths)
    cores = list(layout.target_cores)
    driver = cores[0]
    chunk_rows = max(64, dpu.config.cmem_bank_bytes // record_width)
    wave_rows = int(num_dests * (_BUFFER_CAPACITY / record_width) / 2)
    wave_chunks = max(1, wave_rows // chunk_rows)
    chunk_starts = list(range(0, rows, chunk_rows))

    def kernel(ctx):
        slot = cores.index(ctx.core_id)
        is_driver = ctx.core_id == driver
        cursor = 0
        if is_driver:
            ctx.push(
                Descriptor(
                    dtype=DescriptorType.HASH_CONFIG,
                    partition=spec,
                    partition_layout=layout,
                )
            )
        wave_start = 0
        while True:
            wave = chunk_starts[wave_start : wave_start + wave_chunks]
            if is_driver:
                for start in wave:
                    count = min(chunk_rows, rows - start)
                    for col, (addr, _spec) in enumerate(refs):
                        width = widths[col]
                        ctx.push(
                            Descriptor(
                                dtype=DescriptorType.DDR_TO_DMS,
                                rows=count,
                                col_width=width,
                                ddr_addr=addr + start * width,
                                is_key_column=(col == 0),
                            )
                        )
                    ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMS,
                                        partition=spec))
                    ctx.push(Descriptor(dtype=DescriptorType.DMS_TO_DMEM,
                                        partition=spec))
                while not ctx.dmad.idle():
                    yield from ctx.compute(200)
                for core in cores:
                    if core != driver:
                        yield from ctx.mbox_send(core, ("wave",))
            else:
                yield from ctx.mbox_receive()
            # Drain this core's per-destination record buffer to its
            # destination region in DRAM (raw bytes: col_width=1).
            count = int(ctx.dmem.view(_COUNT_OFFSET, 4, np.uint32)[0])
            nbytes = count * record_width
            if nbytes:
                ctx.push(
                    Descriptor(
                        dtype=DescriptorType.DMEM_TO_DDR,
                        rows=nbytes,
                        col_width=1,
                        ddr_addr=region_addrs[slot] + cursor,
                        dmem_addr=0,
                        notify_event=_DRAIN_EVENT,
                    )
                )
                yield from ctx.wfe(_DRAIN_EVENT)
                ctx.clear_event(_DRAIN_EVENT)
                cursor += nbytes
            done = wave_start + wave_chunks >= len(chunk_starts)
            if is_driver:
                for _ in range(len(cores) - 1):
                    yield from ctx.mbox_receive()
                layout.reset()
                for core in cores:
                    dpu.scratchpads[core].view(
                        _COUNT_OFFSET, 4, np.uint32
                    )[0] = 0
                for core in cores:
                    if core != driver:
                        yield from ctx.mbox_send(core, ("next", done))
            else:
                yield from ctx.mbox_send(driver, ("ack",))
                yield from ctx.mbox_receive()
            wave_start += wave_chunks
            if done:
                break
        return cursor

    return kernel


def partition_source(dpu, dtable, key: str, names: Sequence[str],
                     num_dests: int):
    """Partition one DPU-resident table into ``num_dests`` raw record
    blobs with the DMS hash engine (§3.1), draining each destination's
    records to its own DRAM region.

    This is the per-source unit of the exchange, exposed separately so
    the recovery layer can re-partition a dead DPU's shard on a
    survivor — the kernel is deterministic, so the survivor produces
    byte-identical blobs. Returns ``(raws, cycles, record_width,
    dtypes)`` where ``raws[dst]`` is the row-major record bytes bound
    for destination slot ``dst``.
    """
    spec = shuffle_spec(num_dests)
    names = [key] + [name for name in names if name != key]
    dtypes = [dtable.table.column(name).dtype for name in names]
    record_width = sum(dtype.itemsize for dtype in dtypes)
    rows = dtable.num_rows
    cores = list(dpu.config.core_ids)[:num_dests]
    if num_dests > len(dpu.config.core_ids):
        raise ValueError(
            f"simulated shuffles are limited to {len(dpu.config.core_ids)} "
            f"destinations (one drain core per destination): {num_dests}"
        )
    keys_host = dtable.table.column(key)
    cids = compute_cids(keys_host, spec)
    counts = np.bincount(cids, minlength=num_dests)
    region_addrs = [
        dpu.alloc(max(int(counts[dst]) * record_width, 8))
        for dst in range(num_dests)
    ]
    cycles = 0.0
    if rows:
        refs = [dtable.column_ref(name) for name in names]
        layout = PartitionLayout(
            target_cores=tuple(cores),
            dmem_base=0,
            capacity=_BUFFER_CAPACITY,
            count_offset=_COUNT_OFFSET,
        )
        kernel = _partition_kernel(
            dpu, refs, rows, num_dests, region_addrs, spec, layout
        )
        launch = dpu.launch(kernel, cores=cores)
        cycles = launch.cycles
        for slot, written in enumerate(launch.values):
            expected = int(counts[slot]) * record_width
            if written != expected:
                raise RuntimeError(
                    f"partition drain mismatch on {dpu.name} slot {slot}: "
                    f"{written} != {expected} bytes"
                )
    raws = []
    for dst in range(num_dests):
        nbytes = int(counts[dst]) * record_width
        raws.append(dpu.load_array(region_addrs[dst], nbytes, np.uint8).copy())
        dpu.free(region_addrs[dst])
    return raws, cycles, record_width, dtypes


def shuffle_exchange(
    cluster: Cluster,
    dtables: Sequence,
    key: str,
    names: Optional[Sequence[str]] = None,
) -> ShuffleResult:
    """Repartition one :class:`~repro.apps.sql.table.DpuTable` per DPU
    by ``hash(key)`` so equal keys co-locate; returns the reassembled
    columns per destination DPU.
    """
    num_dpus = cluster.num_dpus
    if len(dtables) != num_dpus:
        raise ValueError(f"{len(dtables)} tables for {num_dpus} DPUs")
    spec = shuffle_spec(num_dpus)
    if num_dpus > len(cluster.config.core_ids):
        raise ValueError(
            f"simulated shuffles are limited to {len(cluster.config.core_ids)} "
            f"DPUs (one drain core per destination); model {num_dpus} DPUs "
            "with ShuffleRackModel instead"
        )
    if names is None:
        names = list(dtables[0].table.column_names)
    names = [key] + [name for name in names if name != key]
    dtypes = [dtables[0].table.column(name).dtype for name in names]
    record_width = sum(dtype.itemsize for dtype in dtypes)
    engine = cluster.engine

    # Phase 1 (serial per source DPU on the shared clock; the phase is
    # embarrassingly parallel, so the max launch — not the span —
    # feeds the parallel-time model).
    partitions: List[List[Optional[np.ndarray]]] = [
        [None] * num_dpus for _ in range(num_dpus)
    ]  # partitions[src][dst] = raw record bytes
    partition_cycles = 0.0
    for src, (dpu, dtable) in enumerate(zip(cluster.dpus, dtables)):
        raws, cycles, record_width, dtypes = partition_source(
            dpu, dtable, key, names, num_dpus
        )
        partitions[src] = raws
        partition_cycles = max(partition_cycles, cycles)

    # Phase 2: concurrent all-to-all over the A9s/fabric. A rotated
    # schedule (src s sends to s+1, s+2, ...) avoids synchronized
    # bursts into one endpoint; receivers index by source so the
    # reassembly order is deterministic regardless of arrival order.
    exchange_began = engine.now
    rows_moved = 0
    bytes_moved = 0
    processes = []
    collectors = []
    for src, dpu in enumerate(cluster.dpus):
        outbound = []
        for offset in range(1, num_dpus):
            dst = (src + offset) % num_dpus
            raw = partitions[src][dst]
            outbound.append((dst, raw, int(raw.nbytes)))
            rows_moved += raw.nbytes // record_width
            bytes_moved += int(raw.nbytes)

        def announce(dpu=dpu, outbound=outbound):
            core = dpu.context(0)
            yield from core.mbox_send(A9_ID, outbound)

        def scatter(dpu=dpu, src=src):
            _sender, messages = yield from dpu.mailbox.receive(A9_ID)
            for dst, payload, nbytes in messages:
                yield from cluster.fabric.send(src, dst, payload, nbytes)

        def gather(dst=src):
            received = {}
            for _ in range(num_dpus - 1):
                sender, payload = yield from cluster.fabric.receive(dst)
                received[sender] = payload
            return received

        processes.append(engine.process(announce()))
        processes.append(engine.process(scatter(), name=f"a9.shuffle_out[{src}]"))
        collector = engine.process(gather(), name=f"a9.shuffle_in[{src}]")
        processes.append(collector)
        collectors.append(collector)
    cluster.run(processes)
    exchange_cycles = engine.now - exchange_began
    if cluster.metrics.enabled:
        cluster.metrics.observe("shuffle.partition.cycles", partition_cycles)
        cluster.metrics.observe("shuffle.exchange.cycles", exchange_cycles)

    # Phase 3: reassemble columns per destination, in source order.
    columns: List[Dict[str, np.ndarray]] = []
    for dst in range(num_dpus):
        received = collectors[dst].value
        parts = []
        for src in range(num_dpus):
            raw = (partitions[src][dst] if src == dst
                   else received[src])
            if raw.nbytes:
                parts.append(raw)
        raw_all = (np.concatenate(parts) if parts
                   else np.empty(0, dtype=np.uint8))
        arrays = _parse_records(raw_all, dtypes)
        columns.append(dict(zip(names, arrays)))
    return ShuffleResult(
        columns=columns,
        partition_cycles=partition_cycles,
        exchange_cycles=exchange_cycles,
        rows_moved=rows_moved,
        bytes_moved=bytes_moved,
    )


# -- rack-scale analytic model ------------------------------------------------


@dataclass(frozen=True)
class ShuffleRackModel:
    """§4 scaling arithmetic for a shuffle job at rack scale.

    Per-row compute constants are calibrated from a measured
    small-cluster run (:meth:`from_sim`); the fabric terms come
    straight from :class:`FabricConfig`, so the model and the
    simulator price a message identically. The gather uses a binary
    reduction tree (log2 D rounds), the standard coordinator-relief
    scheme at 500+ endpoints.

    ``all_to_all=False`` models the pre-aggregating job family
    (cluster_hll, cluster_tpch_q1): no repartition phase, only the
    tiny partials cross the fabric. Those are the jobs the paper
    scaled "across 500+ DPU clusters" — their speedup stays
    near-linear because network volume is independent of the input
    size, while a full shuffle eventually pays the all-to-all.
    """

    total_rows: int
    record_bytes: int
    partition_cycles_per_row: float = 6.0
    local_cycles_per_row: float = 10.0
    result_bytes: int = 4096
    all_to_all: bool = True
    # default_factory, NOT FabricConfig(): a class-level call default
    # is evaluated once, so every model instance would share (and, were
    # the config mutable, cross-contaminate) one object.
    fabric: FabricConfig = field(default_factory=FabricConfig)

    @classmethod
    def from_sim(cls, detail: Dict[str, float], num_dpus: int,
                 total_rows: int, record_bytes: int,
                 result_bytes: int = 4096,
                 all_to_all: bool = True,
                 fabric: Optional[FabricConfig] = None) -> "ShuffleRackModel":
        """Calibrate the per-row constants from a measured cluster
        job's ``ScaleOutResult.detail`` phase breakdown."""
        if fabric is None:
            fabric = FabricConfig()
        rows_local = max(1.0, total_rows / num_dpus)
        return cls(
            total_rows=total_rows,
            record_bytes=record_bytes,
            partition_cycles_per_row=detail["partition_cycles"] / rows_local,
            local_cycles_per_row=detail["local_cycles"] / rows_local,
            result_bytes=result_bytes,
            all_to_all=all_to_all,
            fabric=fabric,
        )

    def phase_cycles(self, num_dpus: int) -> Dict[str, float]:
        if num_dpus < 1:
            raise ValueError(f"need >= 1 DPU: {num_dpus}")
        rows_local = self.total_rows / num_dpus
        cfg = self.fabric
        partition = (rows_local * self.partition_cycles_per_row
                     if num_dpus > 1 and self.all_to_all else 0.0)
        local = rows_local * self.local_cycles_per_row
        exchange = 0.0
        gather = 0.0
        if num_dpus > 1:
            if self.all_to_all:
                # Each A9 posts D-1 sends and D-1 receives serially
                # and serializes ~(D-1)/D of its shard out (and the
                # same volume back in) at link rate.
                peers = num_dpus - 1
                bytes_out = (rows_local * self.record_bytes
                             * peers / num_dpus)
                exchange = (
                    peers * (cfg.a9_send_overhead_cycles
                             + cfg.a9_receive_overhead_cycles)
                    + 2 * bytes_out / cfg.link_bytes_per_cycle
                    + cfg.fabric_latency_cycles
                )
            rounds = math.ceil(math.log2(num_dpus))
            per_hop = (cfg.a9_send_overhead_cycles
                       + cfg.a9_receive_overhead_cycles
                       + cfg.fabric_latency_cycles
                       + max(self.result_bytes, 64) / cfg.link_bytes_per_cycle)
            gather = rounds * per_hop
        return {
            "partition": partition,
            "exchange": exchange,
            "local": local,
            "gather": gather,
        }

    def job_cycles(self, num_dpus: int) -> float:
        return sum(self.phase_cycles(num_dpus).values())

    def network_bytes(self, num_dpus: int) -> int:
        """Per-job fabric bytes: uniform-hash all-to-all volume plus
        the reduction tree's partial results."""
        if num_dpus < 2:
            return 0
        shuffle = ((self.total_rows * self.record_bytes
                    * (num_dpus - 1) / num_dpus)
                   if self.all_to_all else 0.0)
        gather = (num_dpus - 1) * self.result_bytes
        return int(shuffle + gather)

    def speedup(self, num_dpus: int) -> float:
        return self.job_cycles(1) / self.job_cycles(num_dpus)
