"""Scale-out algorithms across a DPU cluster (paper §4).

"Such system services allowed us to scale several of the applications
in Section 5 across 500+ DPU clusters." The communication path is the
one the paper describes: dpCores never touch the network — a
designated core mailboxes its partial result (a pointer-sized
message; bulk stays in DRAM) to the local **A9**, which runs the
Infiniband stack and ships it to the coordinator DPU's A9.

Two job families:

* **merge-only** — :func:`cluster_hll` (lossless register-file merge)
  and :func:`cluster_filter_count` (sum of per-shard counts): each
  DPU works on its shard in place; only tiny partials cross the
  fabric.

* **exchange-based** — :func:`cluster_groupby`,
  :func:`cluster_partitioned_join_count` and :func:`cluster_topk`
  redistribute (or rank) rows with the
  :mod:`~repro.cluster.shuffle` partitioned exchange so each DPU owns
  a disjoint key range; :func:`cluster_tpch_q1` instead pre-aggregates
  per shard and merges 4-group partials — with NDV ~4, shipping the
  group table (a few hundred bytes) beats shuffling the whole
  lineitem, the classic aggregate-pushdown tradeoff.

Every job reports **per-job** fabric accounting: ``network_bytes``
and ``retransmissions`` are deltas from the job's start, so
back-to-back jobs on one long-lived cluster don't absorb each other's
traffic.

On the fault-free path the coordinator is pinned to DPU 0. Under a
chaos plan every job runs through the
:class:`~repro.cluster.recovery.RecoveryManager` retry loops instead,
which address partials to the *current elected leader* — DPU 0 until
it dies, the lowest surviving index afterwards — and still hand back
exactly one :class:`ScaleOutResult` per job (merge happens once, on
the final leader, after every shard arrived).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..apps.hll import HllSketch, dpu_hll, hll_estimate
from ..apps.sql import Between, Table, dpu_filter
from ..apps.sql.aggregate import (
    _as_row_filter,
    _needed_columns,
    dpu_groupby,
    merge_groups,
)
from ..apps.sql.join import dpu_partitioned_join_count
from ..apps.sql.topk import dpu_topk
from ..apps.sql.tpch_queries import q1_plan
from ..core.mailbox import A9_ID
from .rack import Cluster
from .recovery import ClusterError, RecoveryStats
from .shuffle import shuffle_exchange

__all__ = [
    "ScaleOutResult",
    "cluster_batched_queries",
    "cluster_filter_count",
    "cluster_groupby",
    "cluster_hll",
    "cluster_partitioned_join_count",
    "cluster_topk",
    "cluster_tpch_q1",
]


@dataclass
class ScaleOutResult:
    """Outcome of one distributed job."""

    value: Any
    cycles: float
    num_dpus: int
    clock_hz: float
    # Per-job deltas (snapshot at job start minus at completion), NOT
    # cluster-lifetime counters: a second job on the same cluster
    # reports only its own traffic.
    network_bytes: int
    # Admission outcome (see repro.runtime.admission): True when the
    # coordinator admitted this job at reduced per-DPU core fanout.
    degraded: bool = False
    retransmissions: int = 0
    # Phase breakdown for exchange-based jobs (partition_cycles,
    # exchange_cycles, local_cycles, gather_cycles, parallel_cycles,
    # rows_moved) — feeds ShuffleRackModel calibration.
    detail: Optional[Dict[str, float]] = None
    # Recovery outcome when the cluster ran this job under a chaos
    # plan (declared deaths, re-executed shards, speculative wins...);
    # None on the fault-free path.
    recovery: Optional[RecoveryStats] = None

    @property
    def seconds(self) -> float:
        return self.cycles / self.clock_hz


class _JobAccounting:
    """Snapshot fabric counters at job start; build per-job results."""

    def __init__(self, cluster: Cluster, site: str) -> None:
        self.cluster = cluster
        self.site = site
        self.start = cluster.engine.now
        self.start_bytes = cluster.fabric.bytes_sent
        self.start_retransmissions = cluster.fabric.retransmissions

    def result(self, value, ticket, detail=None,
               recovery=None) -> ScaleOutResult:
        cluster = self.cluster
        fabric = cluster.fabric
        if fabric.trace.enabled:
            fabric.trace.complete_async(
                f"cluster.{self.site}", "cluster", self.start,
                num_dpus=cluster.num_dpus,
                network_bytes=fabric.bytes_sent - self.start_bytes,
            )
        return ScaleOutResult(
            value=value,
            cycles=cluster.engine.now - self.start,
            num_dpus=cluster.num_dpus,
            clock_hz=cluster.config.clock_hz,
            network_bytes=fabric.bytes_sent - self.start_bytes,
            retransmissions=(fabric.retransmissions
                             - self.start_retransmissions),
            degraded=bool(ticket.degraded) if ticket is not None else False,
            detail=detail,
            recovery=recovery,
        )


def _a9_uplink(dpu, fabric, dpu_index, coordinator, nbytes):
    """A9 process: wait for the local result pointer on the A9
    mailbox, then ship the buffer to the coordinator's A9."""

    def process():
        _src, payload = yield from dpu.mailbox.receive(A9_ID)
        yield from fabric.send(dpu_index, coordinator, payload, nbytes)

    return process()


def _a9_collector(cluster, coordinator, expected, merge, site="gather"):
    """Coordinator A9: gather ``expected`` messages and merge.

    Each receive is guarded by the fabric's gather lease
    (:attr:`~repro.cluster.network.FabricConfig.gather_lease_cycles`,
    sized far above any fault-free gather): a missing partial raises a
    structured :class:`~repro.cluster.recovery.ClusterError` — naming
    the job, the sim time, the missing DPUs, and the fabric counter
    snapshot — instead of hanging until the engine watchdog."""

    def process():
        engine = cluster.engine
        fabric = cluster.fabric
        lease = fabric.config.gather_lease_cycles
        merged = None
        received = []
        for _ in range(expected):
            abort = engine.timeout(lease)
            message = yield from fabric.receive(coordinator,
                                               abort_event=abort)
            if message is None:
                reason = (f"gather lease of {lease:.0f} cycles expired "
                          f"with {len(received)}/{expected} partials")
                if fabric.trace.enabled:
                    fabric.trace.instant(
                        "cluster.error", unit="cluster", site=site,
                        epoch=0, leader=coordinator, reason=reason,
                    )
                raise ClusterError(
                    site, engine.now,
                    missing=sorted(set(range(cluster.num_dpus))
                                   - set(received)),
                    fabric=fabric.counters(),
                    reason=reason,
                    # The fault-free gather never changes leadership:
                    # generation 0 under the pinned coordinator.
                    epoch=0, leader=coordinator,
                )
            abort.cancel()
            src, payload = message
            received.append(src)
            merged = merge(merged, payload)
        return merged

    return process()


def _gather_partials(cluster, partials, nbytes_of, merge, site="gather"):
    """Ship one partial result per DPU to coordinator 0 and merge.

    Returns (merged value, gather-phase cycles). Follows the paper's
    path on every DPU including the coordinator (its A9 loops back
    through the fabric model, like the merge-only jobs)."""
    engine = cluster.engine
    coordinator = 0
    began = engine.now
    processes = []
    for index, (dpu, partial) in enumerate(zip(cluster.dpus, partials)):

        def sender(dpu=dpu, partial=partial):
            core = dpu.context(0)
            yield from core.mbox_send(A9_ID, partial)

        processes.append(engine.process(sender()))
        processes.append(
            engine.process(
                _a9_uplink(dpu, cluster.fabric, index, coordinator,
                           nbytes_of(partial))
            )
        )
    collector = engine.process(
        _a9_collector(cluster, coordinator, cluster.num_dpus, merge,
                      site=site)
    )
    processes.append(collector)
    cluster.run(processes)
    return collector.value, engine.now - began


def _exchange_detail(partition_cycles, exchange_cycles, local_cycles,
                     gather_cycles, rows_moved) -> Dict[str, float]:
    return {
        "partition_cycles": float(partition_cycles),
        "exchange_cycles": float(exchange_cycles),
        "local_cycles": float(local_cycles),
        "gather_cycles": float(gather_cycles),
        # Critical-path estimate: the per-DPU phases overlap across
        # DPUs in a real rack (the shared-clock sim runs them in
        # turn), so parallel time is max-per-phase, not the sum of
        # every DPU's launch.
        "parallel_cycles": float(partition_cycles + exchange_cycles
                                 + local_cycles + gather_cycles),
        "rows_moved": float(rows_moved),
    }


def cluster_hll(
    cluster: Cluster,
    shards: Sequence[np.ndarray],
    precision: int = 12,
    hash_fn: str = "crc32",
) -> ScaleOutResult:
    """Distributed HyperLogLog over one u64 shard per DPU."""
    if len(shards) != cluster.num_dpus:
        raise ValueError(
            f"{len(shards)} shards for {cluster.num_dpus} DPUs"
        )
    engine = cluster.engine
    accounting = _JobAccounting(cluster, "hll")
    # Admission gate (queue time counts toward the job's latency; a
    # shed raises OverloadError before any DPU does work).
    ticket = cluster.admit_job("cluster.hll")
    coordinator = 0
    register_bytes = (1 << precision)

    try:
        if cluster.recovery is not None and cluster.num_dpus > 1:
            manager = cluster.recovery
            manager.begin_job("hll")
            try:
                def compute(shard_index, dpu, dpu_index):
                    cores = (ticket.fanout(list(dpu.config.core_ids))
                             if ticket is not None else None)
                    shard = shards[shard_index]
                    address = dpu.store_array(shard)
                    local = dpu_hll(
                        dpu, address, len(shard), precision=precision,
                        hash_fn=hash_fn, cores=cores,
                    )
                    return local.detail["registers"]

                def merge_registers(accumulator, registers):
                    if accumulator is None:
                        return registers.copy()
                    np.maximum(accumulator, registers, out=accumulator)
                    return accumulator

                merged, _cycles = manager.run_job(
                    "hll", compute, merge_registers,
                    nbytes_of=lambda registers: register_bytes,
                )
            finally:
                manager.end_job()
            sketch = HllSketch(precision, merged)
            return accounting.result(hll_estimate(sketch), ticket,
                                     recovery=manager.stats)

        processes = []
        for index, (dpu, shard) in enumerate(zip(cluster.dpus, shards)):
            cores = (ticket.fanout(list(dpu.config.core_ids))
                     if ticket is not None else None)
            address = dpu.store_array(shard)
            # The sketch phase is embarrassingly parallel; running each
            # DPU's launch on the shared clock in turn only costs
            # fidelity on overlap the phase does not have. The exchange
            # phase below (mailbox -> A9 -> fabric -> coordinator) is
            # fully concurrent.
            local_result = dpu_hll(
                dpu, address, len(shard), precision=precision,
                hash_fn=hash_fn, cores=cores,
            )
            registers = local_result.detail["registers"]

            def sender(dpu=dpu, index=index, registers=registers):
                core = dpu.context(0)
                yield from core.mbox_send(A9_ID, registers)

            processes.append(engine.process(sender()))
            processes.append(
                engine.process(
                    _a9_uplink(dpu, cluster.fabric, index, coordinator,
                               register_bytes)
                )
            )

        def merge(accumulator, registers):
            if accumulator is None:
                return registers.copy()
            np.maximum(accumulator, registers, out=accumulator)
            return accumulator

        collector = engine.process(
            _a9_collector(cluster, coordinator, cluster.num_dpus, merge,
                          site="hll")
        )
        processes.append(collector)
        cluster.run(processes)
    finally:
        cluster.release_job()
    merged = collector.value
    sketch = HllSketch(precision, merged)
    return accounting.result(hll_estimate(sketch), ticket)


def cluster_filter_count(
    cluster: Cluster,
    shards: Sequence[np.ndarray],
    lo: int,
    hi: int,
) -> ScaleOutResult:
    """Distributed selective count: FILT each shard, ship counts."""
    if len(shards) != cluster.num_dpus:
        raise ValueError(
            f"{len(shards)} shards for {cluster.num_dpus} DPUs"
        )
    engine = cluster.engine
    accounting = _JobAccounting(cluster, "filter_count")
    ticket = cluster.admit_job("cluster.filter_count")
    coordinator = 0
    predicate = Between("v", lo, hi)

    try:
        if cluster.recovery is not None and cluster.num_dpus > 1:
            manager = cluster.recovery
            manager.begin_job("filter_count")
            try:
                def compute(shard_index, dpu, dpu_index):
                    cores = (ticket.fanout(list(dpu.config.core_ids))
                             if ticket is not None else None)
                    table = Table(f"shard{shard_index}",
                                  {"v": shards[shard_index]})
                    result = dpu_filter(dpu, table.to_dpu(dpu), predicate,
                                        cores=cores)
                    return int(result.detail["selected"])

                value, _cycles = manager.run_job(
                    "filter_count", compute,
                    merge=lambda acc, count: (acc or 0) + count,
                    nbytes_of=lambda partial: 8,
                )
            finally:
                manager.end_job()
            return accounting.result(value, ticket,
                                     recovery=manager.stats)

        processes = []
        for index, (dpu, shard) in enumerate(zip(cluster.dpus, shards)):
            cores = (ticket.fanout(list(dpu.config.core_ids))
                     if ticket is not None else None)
            table = Table(f"shard{index}", {"v": shard})
            result = dpu_filter(dpu, table.to_dpu(dpu), predicate,
                                cores=cores)
            count = int(result.detail["selected"])

            def sender(dpu=dpu, count=count):
                core = dpu.context(0)
                yield from core.mbox_send(A9_ID, count)

            processes.append(engine.process(sender()))
            processes.append(
                engine.process(
                    _a9_uplink(dpu, cluster.fabric, index, coordinator, 8)
                )
            )

        collector = engine.process(
            _a9_collector(
                cluster, coordinator, cluster.num_dpus,
                lambda acc, count: (acc or 0) + count,
                site="filter_count",
            )
        )
        processes.append(collector)
        cluster.run(processes)
    finally:
        cluster.release_job()
    return accounting.result(collector.value, ticket)


# -- exchange-based SQL jobs --------------------------------------------------


def _validate_shards(cluster: Cluster, shards, what="shards") -> None:
    if len(shards) != cluster.num_dpus:
        raise ValueError(
            f"{len(shards)} {what} for {cluster.num_dpus} DPUs"
        )


def cluster_groupby(
    cluster: Cluster,
    shards: Sequence[Table],
    key: str,
    aggs,
    row_filter=None,
) -> ScaleOutResult:
    """Distributed group-by: shuffle rows by ``hash(key)`` so each DPU
    owns a disjoint key set, group locally, union the disjoint partial
    tables at the coordinator. Byte-equal to
    :func:`~repro.apps.sql.aggregate.dpu_groupby` over the
    concatenated shards (integer inputs; float sums below 2^53 are
    order-independent)."""
    _validate_shards(cluster, shards)
    if not isinstance(key, str):
        raise ValueError(
            "cluster_groupby shuffles on a single key column; composite "
            "GroupKeys belong in pre-aggregating jobs (see cluster_tpch_q1)"
        )
    accounting = _JobAccounting(cluster, "groupby")
    ticket = cluster.admit_job("cluster.groupby")
    engine = cluster.engine
    try:
        if cluster.num_dpus == 1:
            dpu = cluster.dpus[0]
            local = dpu_groupby(dpu, shards[0].to_dpu(dpu), key, aggs,
                                row_filter=row_filter)
            detail = _exchange_detail(0.0, 0.0, local.cycles, 0.0, 0)
            return accounting.result(local.value, ticket, detail)

        names = _needed_columns(key, aggs, _as_row_filter(row_filter))
        record_bytes = 8 + 8 * len(aggs)

        if cluster.recovery is not None:
            manager = cluster.recovery
            manager.begin_job("groupby")
            try:
                shuffled = manager.run_exchange("groupby", shards, key,
                                                names)
                owners = dict(manager.last_slot_owner)
                local_cycles = 0.0

                def compute(slot, dpu, dpu_index):
                    nonlocal local_cycles
                    columns = shuffled.columns[slot]
                    if len(columns[key]) == 0:
                        return {}
                    local_table = Table(f"shuffle{slot}",
                                        columns).to_dpu(dpu)
                    local = dpu_groupby(dpu, local_table, key, aggs,
                                        row_filter=row_filter)
                    local_cycles = max(local_cycles, local.cycles)
                    return local.value

                def merge(accumulator, partial):
                    merged = accumulator if accumulator is not None else {}
                    merged.update(partial)  # disjoint key sets
                    return merged

                value, gather_cycles = manager.run_job(
                    "groupby", compute, merge,
                    nbytes_of=lambda partial: max(
                        record_bytes * len(partial), 8),
                    owners=owners,
                )
            finally:
                manager.end_job()
            detail = _exchange_detail(
                shuffled.partition_cycles, shuffled.exchange_cycles,
                local_cycles, gather_cycles, shuffled.rows_moved,
            )
            return accounting.result(value or {}, ticket, detail,
                                     recovery=manager.stats)

        dtables = [shard.to_dpu(dpu)
                   for shard, dpu in zip(shards, cluster.dpus)]
        shuffled = shuffle_exchange(cluster, dtables, key, names)

        partials: List[Dict] = []
        local_cycles = 0.0
        for index, (dpu, columns) in enumerate(
            zip(cluster.dpus, shuffled.columns)
        ):
            if len(columns[key]) == 0:
                partials.append({})
                continue
            local_table = Table(f"shuffle{index}", columns).to_dpu(dpu)
            local = dpu_groupby(dpu, local_table, key, aggs,
                                row_filter=row_filter)
            local_cycles = max(local_cycles, local.cycles)
            partials.append(local.value)

        def merge(accumulator, partial):
            merged = accumulator if accumulator is not None else {}
            merged.update(partial)  # disjoint key sets: plain union
            return merged

        value, gather_cycles = _gather_partials(
            cluster, partials,
            nbytes_of=lambda partial: max(record_bytes * len(partial), 8),
            merge=merge, site="groupby",
        )
        detail = _exchange_detail(
            shuffled.partition_cycles, shuffled.exchange_cycles,
            local_cycles, gather_cycles, shuffled.rows_moved,
        )
        return accounting.result(value or {}, ticket, detail)
    finally:
        cluster.release_job()


def cluster_partitioned_join_count(
    cluster: Cluster,
    build_shards: Sequence[Table],
    build_key: str,
    probe_shards: Sequence[Table],
    probe_key: str,
) -> ScaleOutResult:
    """Distributed join cardinality: shuffle both tables on their join
    keys (same hash), join each co-located pair with the 32-way
    intra-DPU partitioned join, sum the match counts."""
    _validate_shards(cluster, build_shards, "build shards")
    _validate_shards(cluster, probe_shards, "probe shards")
    accounting = _JobAccounting(cluster, "join")
    ticket = cluster.admit_job("cluster.join")
    try:
        if cluster.num_dpus == 1:
            dpu = cluster.dpus[0]
            local = dpu_partitioned_join_count(
                dpu, build_shards[0].to_dpu(dpu), build_key,
                probe_shards[0].to_dpu(dpu), probe_key,
            )
            detail = _exchange_detail(0.0, 0.0, local.cycles, 0.0, 0)
            return accounting.result(int(local.value), ticket, detail)

        if cluster.recovery is not None:
            manager = cluster.recovery
            manager.begin_job("join")
            try:
                build_shuffled = manager.run_exchange(
                    "join.build", build_shards, build_key, [build_key]
                )
                probe_shuffled = manager.run_exchange(
                    "join.probe", probe_shards, probe_key, [probe_key]
                )
                owners = dict(manager.last_slot_owner)
                local_cycles = 0.0

                def compute(slot, dpu, dpu_index):
                    nonlocal local_cycles
                    build_columns = build_shuffled.columns[slot]
                    probe_columns = probe_shuffled.columns[slot]
                    if (len(build_columns[build_key]) == 0
                            or len(probe_columns[probe_key]) == 0):
                        return 0
                    build_local = Table(f"build{slot}",
                                        build_columns).to_dpu(dpu)
                    probe_local = Table(f"probe{slot}",
                                        probe_columns).to_dpu(dpu)
                    local = dpu_partitioned_join_count(
                        dpu, build_local, build_key,
                        probe_local, probe_key,
                    )
                    local_cycles = max(local_cycles, local.cycles)
                    return int(local.value)

                value, gather_cycles = manager.run_job(
                    "join", compute,
                    merge=lambda acc, count: (acc or 0) + count,
                    nbytes_of=lambda partial: 8,
                    owners=owners,
                )
            finally:
                manager.end_job()
            detail = _exchange_detail(
                build_shuffled.partition_cycles
                + probe_shuffled.partition_cycles,
                build_shuffled.exchange_cycles
                + probe_shuffled.exchange_cycles,
                local_cycles, gather_cycles,
                build_shuffled.rows_moved + probe_shuffled.rows_moved,
            )
            return accounting.result(int(value or 0), ticket, detail,
                                     recovery=manager.stats)

        build_tables = [shard.to_dpu(dpu)
                        for shard, dpu in zip(build_shards, cluster.dpus)]
        probe_tables = [shard.to_dpu(dpu)
                        for shard, dpu in zip(probe_shards, cluster.dpus)]
        build_shuffled = shuffle_exchange(
            cluster, build_tables, build_key, [build_key]
        )
        probe_shuffled = shuffle_exchange(
            cluster, probe_tables, probe_key, [probe_key]
        )

        partials: List[int] = []
        local_cycles = 0.0
        for index, dpu in enumerate(cluster.dpus):
            build_columns = build_shuffled.columns[index]
            probe_columns = probe_shuffled.columns[index]
            if (len(build_columns[build_key]) == 0
                    or len(probe_columns[probe_key]) == 0):
                partials.append(0)
                continue
            build_local = Table(f"build{index}", build_columns).to_dpu(dpu)
            probe_local = Table(f"probe{index}", probe_columns).to_dpu(dpu)
            local = dpu_partitioned_join_count(
                dpu, build_local, build_key, probe_local, probe_key,
            )
            local_cycles = max(local_cycles, local.cycles)
            partials.append(int(local.value))

        value, gather_cycles = _gather_partials(
            cluster, partials,
            nbytes_of=lambda partial: 8,
            merge=lambda acc, count: (acc or 0) + count,
            site="join",
        )
        detail = _exchange_detail(
            build_shuffled.partition_cycles + probe_shuffled.partition_cycles,
            build_shuffled.exchange_cycles + probe_shuffled.exchange_cycles,
            local_cycles, gather_cycles,
            build_shuffled.rows_moved + probe_shuffled.rows_moved,
        )
        return accounting.result(int(value or 0), ticket, detail)
    finally:
        cluster.release_job()


def cluster_topk(
    cluster: Cluster,
    shards: Sequence[Table],
    column: str,
    k: int,
) -> ScaleOutResult:
    """Distributed top-k: local top-k per shard (row ids offset to the
    global row space), candidates gathered and re-ranked at the
    coordinator — no repartition needed, the two-phase scheme of
    :func:`~repro.apps.sql.topk.dpu_topk` lifted to the cluster.
    Byte-equal to the single-DPU result when values are distinct (with
    duplicates at the k-boundary, which tied rows survive depends on
    the sharding — same caveat as the per-core merge)."""
    _validate_shards(cluster, shards)
    accounting = _JobAccounting(cluster, "topk")
    ticket = cluster.admit_job("cluster.topk")
    try:
        offsets = np.cumsum([0] + [shard.num_rows for shard in shards])

        def merge(accumulator, candidates):
            merged = accumulator if accumulator is not None else []
            merged.extend(candidates)
            return merged

        if cluster.recovery is not None and cluster.num_dpus > 1:
            manager = cluster.recovery
            manager.begin_job("topk")
            try:
                local_cycles = 0.0

                def compute(shard_index, dpu, dpu_index):
                    nonlocal local_cycles
                    local = dpu_topk(
                        dpu, shards[shard_index].to_dpu(dpu), column, k
                    )
                    local_cycles = max(local_cycles, local.cycles)
                    base = int(offsets[shard_index])
                    return [(value, row + base)
                            for value, row in local.value]

                candidates, gather_cycles = manager.run_job(
                    "topk", compute, merge,
                    nbytes_of=lambda partial: max(16 * len(partial), 8),
                )
            finally:
                manager.end_job()
            merged = list(candidates or [])
            merged.sort(reverse=True)
            detail = _exchange_detail(0.0, 0.0, local_cycles,
                                      gather_cycles, 0)
            return accounting.result(merged[:k], ticket, detail,
                                     recovery=manager.stats)

        partials: List[List] = []
        local_cycles = 0.0
        for index, (dpu, shard) in enumerate(zip(cluster.dpus, shards)):
            local = dpu_topk(dpu, shard.to_dpu(dpu), column, k)
            local_cycles = max(local_cycles, local.cycles)
            base = int(offsets[index])
            partials.append(
                [(value, row + base) for value, row in local.value]
            )

        candidates, gather_cycles = _gather_partials(
            cluster, partials,
            nbytes_of=lambda partial: max(16 * len(partial), 8),
            merge=merge, site="topk",
        )
        merged = list(candidates or [])
        merged.sort(reverse=True)
        detail = _exchange_detail(0.0, 0.0, local_cycles, gather_cycles, 0)
        return accounting.result(merged[:k], ticket, detail)
    finally:
        cluster.release_job()


def cluster_tpch_q1(
    cluster: Cluster,
    lineitem_shards: Sequence[Table],
) -> ScaleOutResult:
    """Distributed TPC-H Q1 over row-sharded lineitem.

    Q1 groups into ~4 buckets, so each DPU runs the full local Q1 plan
    on its shard and only the tiny partial group tables cross the
    fabric, combined with the paper's merge operator
    (:func:`~repro.apps.sql.aggregate.merge_groups`) — shuffling the
    shards would move ~6 columns of lineitem to save a 4-row merge.
    All Q1 aggregates are integer sums/counts, so the distributed
    result is byte-equal to the single-DPU plan."""
    _validate_shards(cluster, lineitem_shards, "lineitem shards")
    accounting = _JobAccounting(cluster, "tpch_q1")
    ticket = cluster.admit_job("cluster.tpch_q1")
    key, aggs, row_filter = q1_plan()
    record_bytes = 8 + 8 * len(aggs)

    def merge(accumulator, partial):
        if accumulator is None:
            return merge_groups([partial], aggs)
        return merge_groups([accumulator, partial], aggs)

    try:
        if cluster.recovery is not None and cluster.num_dpus > 1:
            manager = cluster.recovery
            manager.begin_job("tpch_q1")
            try:
                local_cycles = 0.0

                def compute(shard_index, dpu, dpu_index):
                    nonlocal local_cycles
                    local = dpu_groupby(
                        dpu, lineitem_shards[shard_index].to_dpu(dpu),
                        key, aggs, row_filter=row_filter,
                    )
                    local_cycles = max(local_cycles, local.cycles)
                    return local.value

                value, gather_cycles = manager.run_job(
                    "tpch_q1", compute, merge,
                    nbytes_of=lambda partial: max(
                        record_bytes * len(partial), 8),
                )
            finally:
                manager.end_job()
            detail = _exchange_detail(0.0, 0.0, local_cycles,
                                      gather_cycles, 0)
            return accounting.result(value or {}, ticket, detail,
                                     recovery=manager.stats)

        partials: List[Dict] = []
        local_cycles = 0.0
        for index, (dpu, shard) in enumerate(
            zip(cluster.dpus, lineitem_shards)
        ):
            local = dpu_groupby(dpu, shard.to_dpu(dpu), key, aggs,
                                row_filter=row_filter)
            local_cycles = max(local_cycles, local.cycles)
            partials.append(local.value)

        value, gather_cycles = _gather_partials(
            cluster, partials,
            nbytes_of=lambda partial: max(record_bytes * len(partial), 8),
            merge=merge, site="tpch_q1",
        )
        detail = _exchange_detail(0.0, 0.0, local_cycles, gather_cycles, 0)
        return accounting.result(value or {}, ticket, detail)
    finally:
        cluster.release_job()


def cluster_compiled_query(
    cluster: Cluster,
    compiled,
    shards: Sequence[Table],
    strategy: Optional[str] = None,
) -> ScaleOutResult:
    """Run a planner-compiled SQL query
    (:class:`~repro.apps.sql.physical.CompiledQuery`) over row-sharded
    fact tables.

    ``strategy`` defaults to the exchange the cost-based planner chose
    (``compiled.plan["exchange"]["choice"]``):

    - ``pre_aggregate``: each DPU runs the full local plan on its
      shard and only partial group tables cross the fabric, merged
      with :func:`~repro.apps.sql.aggregate.merge_groups` (the only
      legal strategy for computed group keys).
    - ``all_to_all``: shuffle the fact rows by the single-column group
      key so each DPU owns a disjoint key set, group locally, union
      the disjoint partials.

    The coordinator applies ``compiled.finish`` (decode / gather /
    sort / limit) to the merged groups, so the value is byte-equal to
    ``compiled.run_dpu`` and ``compiled.run_xeon`` over the
    concatenated shards (all aggregates are integer-valued float sums
    below 2^53, hence order-independent)."""
    _validate_shards(cluster, shards, "fact shards")
    if strategy is None:
        strategy = compiled.plan["exchange"]["choice"]
    if strategy not in ("pre_aggregate", "all_to_all"):
        raise ValueError(f"unknown exchange strategy {strategy!r}")
    if strategy == "all_to_all" and compiled.key_column is None:
        raise ValueError(
            f"{compiled.name}: all_to_all shuffles on a single key column; "
            "computed group keys only support pre_aggregate"
        )
    site = f"sql.{compiled.name}"
    accounting = _JobAccounting(cluster, site)
    ticket = cluster.admit_job(f"cluster.{site}")
    record_bytes = compiled.record_bytes

    def merge_partials(accumulator, partial):
        if accumulator is None:
            return merge_groups([partial], compiled.aggs)
        return merge_groups([accumulator, partial], compiled.aggs)

    def merge_disjoint(accumulator, partial):
        merged = accumulator if accumulator is not None else {}
        merged.update(partial)  # disjoint key sets: plain union
        return merged

    nbytes_of = lambda partial: max(record_bytes * len(partial), 8)  # noqa: E731

    try:
        if cluster.num_dpus == 1:
            groups, cycles = compiled.run_local(
                cluster.dpus[0], shards[0].columns, "shard0")
            detail = _exchange_detail(0.0, 0.0, cycles, 0.0, 0)
            return accounting.result(compiled.finish(groups), ticket, detail)

        if cluster.recovery is not None:
            manager = cluster.recovery
            manager.begin_job(site)
            try:
                local_cycles = 0.0
                if strategy == "all_to_all":
                    shuffled = manager.run_exchange(
                        site, shards, compiled.key_column,
                        compiled.needed_columns,
                    )
                    owners = dict(manager.last_slot_owner)

                    def compute(slot, dpu, dpu_index):
                        nonlocal local_cycles
                        groups, cycles = compiled.run_local(
                            dpu, shuffled.columns[slot], f"slot{slot}")
                        local_cycles = max(local_cycles, cycles)
                        return groups

                    value, gather_cycles = manager.run_job(
                        site, compute, merge_disjoint,
                        nbytes_of=nbytes_of, owners=owners,
                    )
                    detail = _exchange_detail(
                        shuffled.partition_cycles,
                        shuffled.exchange_cycles,
                        local_cycles, gather_cycles, shuffled.rows_moved,
                    )
                else:
                    def compute(shard_index, dpu, dpu_index):
                        nonlocal local_cycles
                        groups, cycles = compiled.run_local(
                            dpu, shards[shard_index].columns,
                            f"shard{shard_index}")
                        local_cycles = max(local_cycles, cycles)
                        return groups

                    value, gather_cycles = manager.run_job(
                        site, compute, merge_partials,
                        nbytes_of=nbytes_of,
                    )
                    detail = _exchange_detail(0.0, 0.0, local_cycles,
                                              gather_cycles, 0)
            finally:
                manager.end_job()
            return accounting.result(compiled.finish(value or {}), ticket,
                                     detail, recovery=manager.stats)

        partials: List[Dict] = []
        local_cycles = 0.0
        if strategy == "all_to_all":
            dtables = [
                Table(shard.name, {
                    name: shard.columns[name]
                    for name in compiled.needed_columns
                }).to_dpu(dpu)
                for shard, dpu in zip(shards, cluster.dpus)
            ]
            shuffled = shuffle_exchange(
                cluster, dtables, compiled.key_column,
                compiled.needed_columns,
            )
            for index, (dpu, columns) in enumerate(
                zip(cluster.dpus, shuffled.columns)
            ):
                groups, cycles = compiled.run_local(dpu, columns,
                                                    f"slot{index}")
                local_cycles = max(local_cycles, cycles)
                partials.append(groups)
            merge = merge_disjoint
            exchange = (shuffled.partition_cycles, shuffled.exchange_cycles,
                        shuffled.rows_moved)
        else:
            for index, (dpu, shard) in enumerate(
                zip(cluster.dpus, shards)
            ):
                groups, cycles = compiled.run_local(dpu, shard.columns,
                                                    f"shard{index}")
                local_cycles = max(local_cycles, cycles)
                partials.append(groups)
            merge = merge_partials
            exchange = (0.0, 0.0, 0)

        value, gather_cycles = _gather_partials(
            cluster, partials, nbytes_of=nbytes_of, merge=merge, site=site,
        )
        detail = _exchange_detail(exchange[0], exchange[1], local_cycles,
                                  gather_cycles, exchange[2])
        return accounting.result(compiled.finish(value or {}), ticket, detail)
    finally:
        cluster.release_job()


def cluster_batched_queries(
    cluster: Cluster,
    batch: Sequence,
    shards: Sequence[Table],
) -> ScaleOutResult:
    """Run several compiled queries over **one shared fact scan**.

    The serving layer's batching primitive
    (:mod:`repro.serve`): every
    :class:`~repro.apps.sql.physical.CompiledQuery` in ``batch`` must
    read the same fact table (equal
    :attr:`~repro.apps.sql.physical.CompiledQuery.batch_key`). Each
    DPU stores the *union* of the batch's needed columns once, then
    runs every query's group-by against that single resident copy —
    the DRAM image, admission ticket, and gather round-trip are paid
    once per batch instead of once per query. Partial group tables for
    the whole batch travel to the coordinator in one message per DPU
    and merge per-query with
    :func:`~repro.apps.sql.aggregate.merge_groups` (the
    ``pre_aggregate`` exchange lifted to a query list).

    ``value`` is a tuple of finished row tuples, aligned with
    ``batch`` order; each element is byte-equal to running that query
    alone through :func:`cluster_compiled_query` over the same shards.
    """
    batch = list(batch)
    if not batch:
        raise ValueError("empty query batch")
    fact = batch[0].fact
    for compiled in batch[1:]:
        if compiled.batch_key != batch[0].batch_key:
            raise ValueError(
                f"{compiled.name} (fact {compiled.fact!r}, catalog "
                f"v{compiled.catalog_version}) cannot share a scan with "
                f"{batch[0].name} (fact {fact!r}, catalog "
                f"v{batch[0].catalog_version})"
            )
    _validate_shards(cluster, shards, "fact shards")
    union_names = list(dict.fromkeys(
        name for compiled in batch for name in compiled.needed_columns
    ))
    site = "sql.batch[" + "+".join(c.name for c in batch) + "]"
    accounting = _JobAccounting(cluster, site)
    ticket = cluster.admit_job(f"cluster.{site}")

    def shard_partials(dpu, columns, label):
        """The shared scan: one union table stored per DPU; each
        query's group-by streams only its own needed columns from the
        resident copy, so per-query results and cycles match the
        standalone plan exactly."""
        if not columns or len(next(iter(columns.values()))) == 0:
            return [{} for _ in batch], 0.0
        table = Table(f"{fact}_{label}",
                      {name: columns[name] for name in union_names})
        dtable = table.to_dpu(dpu)
        partials = []
        cycles = 0.0
        for compiled in batch:
            local = dpu_groupby(
                dpu, dtable, compiled.key, compiled.aggs,
                row_filter=compiled.row_filter,
                broadcasts=compiled._dpu_broadcasts(dpu),
            )
            partials.append(local.value)
            cycles += local.cycles
        return partials, cycles

    def merge(accumulator, partials):
        if accumulator is None:
            return [merge_groups([partial], compiled.aggs)
                    for partial, compiled in zip(partials, batch)]
        return [merge_groups([merged, partial], compiled.aggs)
                for merged, partial, compiled
                in zip(accumulator, partials, batch)]

    def nbytes_of(partials):
        return max(8, sum(compiled.record_bytes * len(partial)
                          for compiled, partial in zip(batch, partials)))

    def finish(merged):
        if merged is None:
            merged = [{} for _ in batch]
        return tuple(compiled.finish(groups or {})
                     for compiled, groups in zip(batch, merged))

    try:
        if cluster.num_dpus == 1:
            partials, cycles = shard_partials(
                cluster.dpus[0], shards[0].columns, "shard0")
            detail = _exchange_detail(0.0, 0.0, cycles, 0.0, 0)
            detail["batch"] = float(len(batch))
            return accounting.result(
                tuple(compiled.finish(partial or {})
                      for compiled, partial in zip(batch, partials)),
                ticket, detail)

        if cluster.recovery is not None:
            manager = cluster.recovery
            manager.begin_job(site)
            try:
                local_cycles = 0.0

                def compute(shard_index, dpu, dpu_index):
                    nonlocal local_cycles
                    partials, cycles = shard_partials(
                        dpu, shards[shard_index].columns,
                        f"shard{shard_index}")
                    local_cycles = max(local_cycles, cycles)
                    return partials

                value, gather_cycles = manager.run_job(
                    site, compute, merge, nbytes_of=nbytes_of,
                )
            finally:
                manager.end_job()
            detail = _exchange_detail(0.0, 0.0, local_cycles,
                                      gather_cycles, 0)
            detail["batch"] = float(len(batch))
            return accounting.result(finish(value), ticket, detail,
                                     recovery=manager.stats)

        per_dpu: List[List[Dict]] = []
        local_cycles = 0.0
        for index, (dpu, shard) in enumerate(zip(cluster.dpus, shards)):
            partials, cycles = shard_partials(dpu, shard.columns,
                                              f"shard{index}")
            local_cycles = max(local_cycles, cycles)
            per_dpu.append(partials)

        value, gather_cycles = _gather_partials(
            cluster, per_dpu, nbytes_of=nbytes_of, merge=merge, site=site,
        )
        detail = _exchange_detail(0.0, 0.0, local_cycles, gather_cycles, 0)
        detail["batch"] = float(len(batch))
        return accounting.result(finish(value), ticket, detail)
    finally:
        cluster.release_job()
