"""Scale-out algorithms across a DPU cluster (paper §4).

"Such system services allowed us to scale several of the applications
in Section 5 across 500+ DPU clusters." The communication path is the
one the paper describes: dpCores never touch the network — a
designated core mailboxes its partial result (a pointer-sized
message; bulk stays in DRAM) to the local **A9**, which runs the
Infiniband stack and ships it to the coordinator DPU's A9.

Implemented here:

* :func:`cluster_hll` — distributed cardinality estimation: each DPU
  sketches its shard with the §5.4 kernel; A9s ship the 4 KB register
  files to DPU 0, which merges (HLL merges are lossless, so the
  distributed estimate equals the single-node one — tested).
* :func:`cluster_filter_count` — a distributed FILT scan: each DPU
  filters its shard at line rate, A9s ship per-shard counts, the
  coordinator sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..apps.hll import HllSketch, dpu_hll, hll_estimate
from ..apps.sql import Between, Table, dpu_filter
from ..core.mailbox import A9_ID
from .rack import Cluster

__all__ = ["ScaleOutResult", "cluster_hll", "cluster_filter_count"]


@dataclass
class ScaleOutResult:
    """Outcome of one distributed job."""

    value: Any
    cycles: float
    num_dpus: int
    clock_hz: float
    network_bytes: int
    # Admission outcome (see repro.runtime.admission): True when the
    # coordinator admitted this job at reduced per-DPU core fanout.
    degraded: bool = False

    @property
    def seconds(self) -> float:
        return self.cycles / self.clock_hz


def _a9_uplink(dpu, fabric, dpu_index, coordinator, nbytes):
    """A9 process: wait for the local result pointer on the A9
    mailbox, then ship the buffer to the coordinator's A9."""

    def process():
        _src, payload = yield from dpu.mailbox.receive(A9_ID)
        yield from fabric.send(dpu_index, coordinator, payload, nbytes)

    return process()


def _a9_collector(cluster, coordinator, expected, merge):
    """Coordinator A9: gather ``expected`` messages and merge."""

    def process():
        merged = None
        for _ in range(expected):
            _src, payload = yield from cluster.fabric.receive(coordinator)
            merged = merge(merged, payload)
        return merged

    return process()


def cluster_hll(
    cluster: Cluster,
    shards: Sequence[np.ndarray],
    precision: int = 12,
    hash_fn: str = "crc32",
) -> ScaleOutResult:
    """Distributed HyperLogLog over one u64 shard per DPU."""
    if len(shards) != cluster.num_dpus:
        raise ValueError(
            f"{len(shards)} shards for {cluster.num_dpus} DPUs"
        )
    engine = cluster.engine
    start = engine.now
    # Admission gate (queue time counts toward the job's latency; a
    # shed raises OverloadError before any DPU does work).
    ticket = cluster.admit_job("cluster.hll")
    coordinator = 0
    register_bytes = (1 << precision)

    try:
        processes = []
        for index, (dpu, shard) in enumerate(zip(cluster.dpus, shards)):
            cores = (ticket.fanout(list(dpu.config.core_ids))
                     if ticket is not None else None)
            address = dpu.store_array(shard)
            # The sketch phase is embarrassingly parallel; running each
            # DPU's launch on the shared clock in turn only costs
            # fidelity on overlap the phase does not have. The exchange
            # phase below (mailbox -> A9 -> fabric -> coordinator) is
            # fully concurrent.
            local_result = dpu_hll(
                dpu, address, len(shard), precision=precision,
                hash_fn=hash_fn, cores=cores,
            )
            registers = local_result.detail["registers"]

            def sender(dpu=dpu, index=index, registers=registers):
                core = dpu.context(0)
                yield from core.mbox_send(A9_ID, registers)

            processes.append(engine.process(sender()))
            processes.append(
                engine.process(
                    _a9_uplink(dpu, cluster.fabric, index, coordinator,
                               register_bytes)
                )
            )

        def merge(accumulator, registers):
            if accumulator is None:
                return registers.copy()
            np.maximum(accumulator, registers, out=accumulator)
            return accumulator

        collector = engine.process(
            _a9_collector(cluster, coordinator, cluster.num_dpus, merge)
        )
        processes.append(collector)
        cluster.run(processes)
    finally:
        cluster.release_job()
    merged = collector.value
    sketch = HllSketch(precision, merged)
    return ScaleOutResult(
        value=hll_estimate(sketch),
        cycles=engine.now - start,
        num_dpus=cluster.num_dpus,
        clock_hz=cluster.config.clock_hz,
        network_bytes=cluster.fabric.bytes_sent,
        degraded=bool(ticket.degraded) if ticket is not None else False,
    )


def cluster_filter_count(
    cluster: Cluster,
    shards: Sequence[np.ndarray],
    lo: int,
    hi: int,
) -> ScaleOutResult:
    """Distributed selective count: FILT each shard, ship counts."""
    if len(shards) != cluster.num_dpus:
        raise ValueError(
            f"{len(shards)} shards for {cluster.num_dpus} DPUs"
        )
    engine = cluster.engine
    start = engine.now
    ticket = cluster.admit_job("cluster.filter_count")
    coordinator = 0
    predicate = Between("v", lo, hi)

    try:
        processes = []
        for index, (dpu, shard) in enumerate(zip(cluster.dpus, shards)):
            cores = (ticket.fanout(list(dpu.config.core_ids))
                     if ticket is not None else None)
            table = Table(f"shard{index}", {"v": shard})
            result = dpu_filter(dpu, table.to_dpu(dpu), predicate,
                                cores=cores)
            count = int(result.detail["selected"])

            def sender(dpu=dpu, count=count):
                core = dpu.context(0)
                yield from core.mbox_send(A9_ID, count)

            processes.append(engine.process(sender()))
            processes.append(
                engine.process(
                    _a9_uplink(dpu, cluster.fabric, index, coordinator, 8)
                )
            )

        collector = engine.process(
            _a9_collector(
                cluster, coordinator, cluster.num_dpus,
                lambda acc, count: (acc or 0) + count,
            )
        )
        processes.append(collector)
        cluster.run(processes)
    finally:
        cluster.release_job()
    return ScaleOutResult(
        value=collector.value,
        cycles=engine.now - start,
        num_dpus=cluster.num_dpus,
        clock_hz=cluster.config.clock_hz,
        network_bytes=cluster.fabric.bytes_sent,
        degraded=bool(ticket.degraded) if ticket is not None else False,
    )
