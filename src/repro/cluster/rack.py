"""Multi-DPU clusters and the rack-scale provisioning math (§1, §2).

Two pieces:

* :class:`Cluster` — N fully-simulated DPUs on one shared event
  engine, connected by an :class:`~repro.cluster.network.IBFabric`
  through their A9 endpoints. Used by the scale-out algorithms in
  :mod:`repro.cluster.scaleout` (the paper ran its applications on
  500+ DPU clusters; we simulate a handful of DPUs faithfully and
  scale analytically from there).

* :class:`RackSpec` — the paper's rack arithmetic: 1440 DPUs with a
  DDR3 channel each gives >10 TB/s of aggregate memory bandwidth and
  >10 TB of capacity inside a 20 kW provisioned budget (~3 W per
  memory channel, <7 W per processor after networking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.config import DPU_40NM, DPUConfig
from ..core.dpu import DPU
from ..faults import FaultInjector, FaultPlan
from ..obs import NULL_HUB, CounterRegistry, MetricsHub, Tracer
from ..sim import Engine
from .network import FabricConfig, IBFabric
from .recovery import RecoveryConfig, RecoveryManager

__all__ = ["Cluster", "RackSpec", "PAPER_RACK"]


class Cluster:
    """N simulated DPUs sharing one clock domain and an IB fabric."""

    def __init__(
        self,
        num_dpus: int,
        config: DPUConfig = DPU_40NM,
        fabric_config: "FabricConfig | None" = None,
        fault_plan: "FaultPlan | None" = None,
        recovery_config: "RecoveryConfig | None" = None,
    ) -> None:
        if num_dpus < 1:
            raise ValueError(f"need >= 1 DPU: {num_dpus}")
        if fabric_config is None:
            fabric_config = FabricConfig()
        self.engine = Engine()
        self.config = config
        # One shared injector: the fault trace is cluster-global and
        # deterministic across DPUs and the fabric.
        self.faults = FaultInjector(fault_plan, self.engine)
        self.dpus: List[DPU] = [
            DPU(config, engine=self.engine, faults=self.faults,
                name=f"dpu{index}")
            for index in range(num_dpus)
        ]
        self.fabric = IBFabric(
            self.engine, num_dpus, fabric_config, faults=self.faults
        )
        # If the DPUs were constructed with tracing already on (the
        # benchmark suite's --emit-trace hook patches DPU.__init__),
        # put fabric events on the same timeline.
        if self.dpus[0].trace.enabled:
            self.fabric.trace = self.dpus[0].trace
        # Optional coordinator-side admission gate for cluster jobs
        # (see repro.runtime.admission); None = pre-existing behaviour.
        self.admission = None
        # Continuous metrics: the no-op hub until enable_metrics().
        self.metrics = NULL_HUB
        # Rack-scale fault tolerance (see repro.cluster.recovery):
        # active only when the plan schedules chaos events, so a plain
        # FaultPlan keeps every job on the exact pre-recovery path.
        # Any DPU may be chaos-killed — the coordinator included; the
        # manager elects the lowest surviving index as the new leader.
        plan = self.faults.plan
        if plan.chaos or recovery_config is not None:
            self.recovery: "RecoveryManager | None" = RecoveryManager(
                self, recovery_config
            )
            self.recovery.install()
        else:
            self.recovery = None

    @property
    def num_dpus(self) -> int:
        return len(self.dpus)

    @property
    def leader(self) -> int:
        """The DPU currently coordinating cluster jobs: DPU 0 on the
        fault-free path, the elected leader under a chaos plan."""
        return self.recovery.leader if self.recovery is not None else 0

    def set_admission(self, controller):
        """Attach an :class:`~repro.runtime.admission.AdmissionController`
        gating every ``cluster_*`` job at the coordinator."""
        self.admission = controller
        return controller

    def admit_job(self, site: str):
        """Run the admission gate on the shared engine; returns the
        ticket (``None`` with no controller attached). Raises
        :class:`~repro.runtime.admission.OverloadError` when shed."""
        if self.admission is None:
            return None
        process = self.engine.process(self.admission.acquire(site))
        return self.engine.run_until_complete(process)

    def release_job(self) -> None:
        if self.admission is not None:
            self.admission.release()

    def run(self, processes, limit_cycles: float = 10**13):
        """Drive the shared engine until every process completes."""
        gate = self.engine.all_of(list(processes))
        metrics = self.metrics
        if metrics.enabled:
            metrics.touch()
        result = self.engine.run_until_complete(gate, limit=limit_cycles)
        if metrics.enabled:
            metrics.flush()
        return result

    def launch_everywhere(
        self,
        kernel: Callable,
        args_for_dpu: Optional[Callable[[int], Sequence]] = None,
        cores: Optional[Sequence[int]] = None,
    ):
        """Spawn ``kernel(ctx, dpu_index, *extra)`` on every DPU's
        cores concurrently; returns the flat process list (not yet
        run — compose with A9 processes, then :meth:`run`)."""
        processes = []
        for index, dpu in enumerate(self.dpus):
            extra = tuple(args_for_dpu(index)) if args_for_dpu else ()
            processes.extend(
                dpu.spawn_kernels(kernel, args=(index, *extra), cores=cores)
            )
        return processes

    def enable_tracing(self, capacity: int = 1 << 16) -> Tracer:
        """One shared tracer across every DPU and the fabric.

        Each DPU gets its own process row (``pid``) via a tracer view;
        fabric spans land on the ``ib.tx[i]``/``ib.rx[i]`` tracks of
        the cluster row, so a whole shuffle is one Perfetto timeline.
        """
        tracer = Tracer(self.engine, process_name="cluster",
                        capacity=capacity)
        for index, dpu in enumerate(self.dpus):
            dpu.enable_tracing(tracer.view(pid=index + 1,
                                           process_name=dpu.name))
        self.fabric.trace = tracer
        if self.metrics.enabled:
            self.metrics.trace = tracer
        return tracer

    def enable_metrics(
        self,
        hub: Optional[MetricsHub] = None,
        cadence: float = 10_000.0,
        capacity: int = 4096,
    ) -> MetricsHub:
        """One shared metrics hub across every DPU and the fabric.

        The hub samples the merged cluster registry (``dpu<i>.*``,
        ``fabric.*``, ``recovery.*``) plus live fabric inbox occupancy
        on the shared engine clock, and is handed to every DPU so
        per-op digests (launches, jobs, admission waits) aggregate
        cluster-wide. Scheduled chaos events are annotated onto the
        timeline up front at their drawn fire cycles.
        """
        if hub is None:
            hub = MetricsHub(
                self.engine, cadence=cadence, capacity=capacity,
                clock_hz=self.config.clock_hz, trace=self.dpus[0].trace,
            )
        self.metrics = hub
        for dpu in self.dpus:
            dpu.metrics = hub
            if dpu.admission is not None:
                dpu.admission.metrics = hub
        if self.admission is not None:
            self.admission.metrics = hub
        hub.add_sampler(self._metrics_sample)
        # The chaos schedule is fixed at plan time (RecoveryManager
        # installed it during __init__), so its fire cycles are known
        # now: put them on the timeline before the run starts.
        for spec in self.faults.plan.chaos:
            hub.annotate(
                f"chaos.{spec.site}", t=spec.at_cycle,
                targets=",".join(str(t) for t in spec.targets),
                duration=spec.duration, factor=spec.factor,
            )
        return hub

    def _metrics_sample(self) -> Dict[str, float]:
        sample = self.counter_registry().snapshot()
        for endpoint, inbox in self.fabric._inboxes.items():
            sample[f"fabric.inbox{endpoint}.occupancy"] = float(len(inbox))
        return sample

    def counter_registry(self) -> CounterRegistry:
        """Merge every DPU's counter registry plus the fabric's
        counters under one dot-path namespace (``dpu<i>.*`` and
        ``fabric.*``)."""
        registry = CounterRegistry()
        for dpu in self.dpus:
            registry.merge(dpu.counter_registry())
        scope = registry.scope("fabric")
        for name, value in self.fabric.counters().items():
            scope.set(name, value)
        for endpoint in range(self.num_dpus):
            egress, ingress = self.fabric.link_utilization(endpoint)
            scope.set(f"tx{endpoint}.utilization", egress)
            scope.set(f"rx{endpoint}.utilization", ingress)
        if self.recovery is not None:
            recovery_scope = registry.scope("recovery")
            for name, value in self.recovery.stats.counters().items():
                recovery_scope.set(name, value)
        return registry

    def total_watts(self) -> float:
        return self.num_dpus * self.config.tdp_watts


@dataclass(frozen=True)
class RackSpec:
    """Provisioning arithmetic for a 42U rack of DPUs (§1, §2)."""

    num_dpus: int = 1440
    dram_gb_per_dpu: float = 8.0
    channel_gbps: float = 12.8  # DDR3-1600 peak per DPU
    dpu_watts: float = 6.0
    dram_watts_per_channel: float = 3.0
    network_watts_per_dpu: float = 4.0  # shared switch + NIC share
    rack_budget_watts: float = 20_000.0

    @property
    def aggregate_bandwidth_tbps(self) -> float:
        return self.num_dpus * self.channel_gbps / 1000.0

    @property
    def total_capacity_tb(self) -> float:
        return self.num_dpus * self.dram_gb_per_dpu / 1000.0

    @property
    def total_watts(self) -> float:
        return self.num_dpus * (
            self.dpu_watts + self.dram_watts_per_channel
            + self.network_watts_per_dpu
        )

    def within_budget(self) -> bool:
        return self.total_watts <= self.rack_budget_watts

    def seconds_to_scan(self, terabytes: float, efficiency: float = 0.73) -> float:
        """Time to scan a working set at the rack's effective rate.

        ``efficiency`` defaults to the measured DMS fraction of peak
        (~9.4 of 12.8 GB/s). The paper's design point: scan 10 TB in
        under a second.
        """
        effective_tbps = self.aggregate_bandwidth_tbps * efficiency
        return terabytes / effective_tbps


PAPER_RACK = RackSpec()
