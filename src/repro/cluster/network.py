"""Inter-DPU networking via the ARM A9 endpoints (paper §2.4, §4).

Each DPU's dual-core A9 "serves as a networking endpoint and provides
a high bandwidth interface to peer DPUs by running an Infiniband
network stack on Linux"; dpCores reach the network by mailboxing a
buffer pointer to their A9 (bulk data stays in DRAM). The paper
scaled applications "across 500+ DPU clusters" this way.

The fabric model: every DPU has full-duplex ingress/egress links into
a non-blocking switch (QDR Infiniband-class: 4 GB/s per direction),
with a per-message protocol overhead on the sending and receiving A9s
and a fixed fabric latency. Payloads are Python objects (their
simulated size is passed explicitly, as the bytes live in each DPU's
own DRAM space).

Flow control: each destination endpoint advertises
``fabric_inbox_depth`` receive credits (IB receive WQEs). A sender
acquires a credit before serializing onto its egress link and the
credit returns when the receiving A9 dequeues the message, so a slow
receiver backpressures its senders instead of queueing unboundedly.
Stalled sends are counted in ``inbox_stalls``/``inbox_stall_cycles``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..faults import FaultInjector
from ..obs import NULL_TRACER
from ..sim import BandwidthServer, Engine, SimEvent, SimulationError, Store

__all__ = ["FabricConfig", "IBFabric"]


@dataclass(frozen=True)
class FabricConfig:
    """Link and protocol parameters (QDR IB defaults)."""

    link_bytes_per_cycle: float = 5.0  # 4 GB/s at the 800 MHz clock
    fabric_latency_cycles: int = 1200  # ~1.5 us switch+wire
    a9_send_overhead_cycles: int = 4000  # ~5 us verbs post + doorbell
    a9_receive_overhead_cycles: int = 4000
    retransmit_timeout_cycles: int = 6000  # IB link-level retry wait
    # Receive credits per endpoint (posted receive WQEs). The default
    # is far deeper than any in-flight window the simulated jobs
    # reach, so existing cycle goldens are bit-identical; shallow
    # depths exercise end-to-end backpressure.
    fabric_inbox_depth: int = 64
    # Lease on a leader-side gather: if a collector waits longer
    # than this for the next partial, it aborts with a structured
    # ClusterError instead of hanging until the global watchdog. Sized
    # >> the largest fault-free gather (tens of millions of cycles at
    # 800 MHz is tens of milliseconds) so it can never false-positive.
    gather_lease_cycles: int = 50_000_000


class IBFabric:
    """A non-blocking switch connecting the DPUs of a cluster."""

    def __init__(
        self,
        engine: Engine,
        num_endpoints: int,
        config: Optional[FabricConfig] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        # None-sentinel, not a call default: a default evaluated once
        # at definition time would be one shared instance across every
        # fabric ever built (ruff B008 guards this class of bug).
        if config is None:
            config = FabricConfig()
        if num_endpoints < 1:
            raise SimulationError(f"need >= 1 endpoint: {num_endpoints}")
        if config.fabric_inbox_depth < 1:
            raise SimulationError(
                f"fabric_inbox_depth must be >= 1: {config.fabric_inbox_depth}"
            )
        self.engine = engine
        self.config = config
        self.faults = faults if faults is not None else FaultInjector()
        self.num_endpoints = num_endpoints
        self._egress = [
            BandwidthServer(engine, config.link_bytes_per_cycle,
                            name=f"ib.tx[{i}]")
            for i in range(num_endpoints)
        ]
        self._ingress = [
            BandwidthServer(engine, config.link_bytes_per_cycle,
                            name=f"ib.rx[{i}]")
            for i in range(num_endpoints)
        ]
        self._inboxes: Dict[int, Store] = {
            endpoint: Store(engine, capacity=config.fabric_inbox_depth)
            for endpoint in range(num_endpoints)
        }
        # Receive-credit flow control: a plain counter plus a waiter
        # queue (no simulation event on the uncontended path, so deep
        # defaults leave event ordering — and cycle goldens — exactly
        # as before credits existed).
        self._credits: List[int] = [
            config.fabric_inbox_depth for _ in range(num_endpoints)
        ]
        self._credit_waiters: List[deque] = [
            deque() for _ in range(num_endpoints)
        ]
        self.messages_sent = 0
        self.bytes_sent = 0
        self.retransmissions = 0
        self.bytes_retransmitted = 0
        self.inbox_stalls = 0
        self.inbox_stall_cycles = 0.0
        # Rack-scale fault state (empty on the fault-free path: every
        # check below is a falsy-dict/list conditional, no events).
        # _dead_at maps endpoint -> cycle of its fail-stop; _severs
        # holds (group, start, end) partition windows.
        self._dead_at: Dict[int, float] = {}
        self._severs: List[Tuple[frozenset, float, float]] = []
        self.partition_drops = 0  # messages lost to a severed link
        self.blackholed = 0  # messages to/from a dead endpoint
        self.credits_released_on_death = 0
        # Observability hook; cluster coordinators swap in a live
        # tracer (fabric events land on ib.tx[i]/ib.rx[i] tracks).
        self.trace = NULL_TRACER

    def _check(self, endpoint: int) -> None:
        if not 0 <= endpoint < self.num_endpoints:
            raise SimulationError(
                f"endpoint {endpoint} outside 0..{self.num_endpoints - 1}"
            )

    def _acquire_credit(self, dst: int):
        """Process generator: take one of ``dst``'s receive credits,
        blocking (with stall accounting) when none are free."""
        if self._credits[dst] > 0 and not self._credit_waiters[dst]:
            self._credits[dst] -= 1
            return
        self.inbox_stalls += 1
        stall_began = self.engine.now
        waiter = SimEvent(self.engine)
        self._credit_waiters[dst].append(waiter)
        yield waiter
        self.inbox_stall_cycles += self.engine.now - stall_began
        if self.trace.enabled:
            self.trace.complete_async(
                "ib.credit_stall", f"ib.rx[{dst}]", stall_began, dst=dst
            )

    def _release_credit(self, dst: int) -> None:
        waiters = self._credit_waiters[dst]
        if waiters:
            # Hand the credit straight to the oldest stalled sender.
            waiters.popleft().succeed()
        else:
            self._credits[dst] += 1

    # -- rack-scale fault primitives ------------------------------------

    def schedule_kill(self, endpoint: int, at_cycle: float) -> None:
        """Fail-stop ``endpoint`` at ``at_cycle``: nothing sent at or
        after that instant leaves the node, nothing is delivered to it.
        In-flight messages (already past the egress link) still arrive.
        Pure state — no simulation events are scheduled."""
        self._check(endpoint)
        if at_cycle < 0:
            raise SimulationError(f"negative kill time {at_cycle}")
        current = self._dead_at.get(endpoint)
        if current is None or at_cycle < current:
            self._dead_at[endpoint] = float(at_cycle)

    def endpoint_dead(self, endpoint: int) -> bool:
        """Is the endpoint past its fail-stop instant?"""
        dead_at = self._dead_at.get(endpoint)
        return dead_at is not None and self.engine.now >= dead_at

    def dead_since(self, endpoint: int) -> Optional[float]:
        """The endpoint's fail-stop cycle, if one is scheduled."""
        return self._dead_at.get(endpoint)

    def declare_dead(self, endpoint: int) -> int:
        """Survivor-side cleanup once the failure detector declares
        ``endpoint`` dead: wake every sender stalled on the corpse's
        receive credits, restore the credit pool to full depth, and
        drop its queued inbox items (nobody will ever receive them).
        Works for any endpoint — a deposed leader's inbox is cleaned
        the same way a worker's is. Returns the number of stalled
        senders released."""
        self._check(endpoint)
        waiters = self._credit_waiters[endpoint]
        released = len(waiters)
        while waiters:
            waiters.popleft().succeed()
        restored = self.config.fabric_inbox_depth - self._credits[endpoint]
        self._credits[endpoint] = self.config.fabric_inbox_depth
        self._inboxes[endpoint].items.clear()
        self.credits_released_on_death += restored
        if restored and self.trace.enabled:
            self.trace.instant("ib.credits_released", unit=f"ib.rx[{endpoint}]",
                               endpoint=endpoint, released=restored)
        return released

    def sever(self, targets, start_cycle: float, end_cycle: float) -> None:
        """Partition window: links between ``targets`` and every other
        endpoint are down for ``[start_cycle, end_cycle)``. Messages
        crossing the cut at their delivery instant are lost (counted
        in ``partition_drops``); traffic within either side flows."""
        group = frozenset(targets)
        for endpoint in group:
            self._check(endpoint)
        if not group or end_cycle <= start_cycle:
            raise SimulationError(
                f"bad partition window {sorted(group)} "
                f"[{start_cycle}, {end_cycle})"
            )
        self._severs.append((group, float(start_cycle), float(end_cycle)))

    def severed(self, src: int, dst: int) -> bool:
        """Is the src->dst link inside an active partition window?"""
        if not self._severs:
            return False
        now = self.engine.now
        for group, start, end in self._severs:
            if start <= now < end and (src in group) != (dst in group):
                return True
        return False

    def _trace_tx_bytes(self, src: int) -> None:
        self.trace.counter(
            "ib.bytes",
            unit=f"ib.tx[{src}]",
            sent=self.bytes_sent,
            retransmitted=self.bytes_retransmitted,
        )

    def send(self, src: int, dst: int, payload: Any, nbytes: int):
        """A9-side send (process generator): verbs overhead, receive
        credit, egress link serialization, fabric latency, then
        ingress delivery."""
        self._check(src)
        self._check(dst)
        if nbytes < 0:
            raise SimulationError(f"negative message size {nbytes}")
        if self._dead_at and self.endpoint_dead(src):
            # Fail-stop: the source A9 is past its kill instant, so
            # the post never happens. (Sends *to* a corpse still burn
            # the link and blackhole at delivery — the sender cannot
            # know the peer is dead until the detector declares it.)
            self.blackholed += 1
            return
        send_began = self.engine.now
        yield self.engine.timeout(self.config.a9_send_overhead_cycles)
        yield from self._acquire_credit(dst)
        yield self._egress[src].transfer(max(nbytes, 64))
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if self.trace.enabled:
            self.trace.complete_async("ib.send", f"ib.tx[{src}]",
                                      send_began, dst=dst, bytes=nbytes)
            self._trace_tx_bytes(src)

        # The message propagates and queues on the destination's
        # ingress link without blocking the sender further. A link
        # flap (the ``net.drop`` fault site) loses the message in the
        # fabric; IB link-level retry re-serializes it from the source
        # after a timeout, so delivery is reliable but delayed (and
        # the re-sent bytes are charged to the source link).
        def deliver():
            hop_began = self.engine.now
            yield self.engine.timeout(self.config.fabric_latency_cycles)
            while self.faults.roll("net.drop", detail=f"link {src}->{dst}"):
                if self._dead_at and self.endpoint_dead(src):
                    # The source died before the link-level retry could
                    # re-serialize the frame: the message is gone. The
                    # destination's receive WQE was never consumed, so
                    # its credit goes back to the pool.
                    self.blackholed += 1
                    self._release_credit(dst)
                    return
                self.retransmissions += 1
                if self.trace.enabled:
                    self.trace.instant("ib.retransmit", unit=f"ib.tx[{src}]",
                                       dst=dst, bytes=nbytes)
                yield self.engine.timeout(self.config.retransmit_timeout_cycles)
                yield self._egress[src].transfer(max(nbytes, 64))
                self.bytes_retransmitted += nbytes
                if self.trace.enabled:
                    self._trace_tx_bytes(src)
                yield self.engine.timeout(self.config.fabric_latency_cycles)
            if self._dead_at and self.endpoint_dead(dst):
                # The destination is past its fail-stop instant: the
                # frame arrives at a dark NIC and is lost.
                self.blackholed += 1
                self._release_credit(dst)
                return
            if self._severs and self.severed(src, dst):
                # The link is inside a partition window at the delivery
                # instant. IB link-level retry does not span a downed
                # link — recovery happens end-to-end (epoch restart).
                # The unconsumed receive WQE's credit returns.
                self.partition_drops += 1
                self._release_credit(dst)
                if self.trace.enabled:
                    self.trace.instant("ib.partition_drop",
                                       unit=f"ib.rx[{dst}]",
                                       src=src, bytes=nbytes)
                return
            yield self._ingress[dst].transfer(max(nbytes, 64))
            yield self._inboxes[dst].put((src, payload))
            if self.trace.enabled:
                self.trace.complete_async("ib.deliver", f"ib.rx[{dst}]",
                                          hop_began, src=src, bytes=nbytes)

        self.engine.process(deliver(), name=f"ib.deliver->{dst}")

    def receive(self, endpoint: int, abort_event: Optional[SimEvent] = None):
        """A9-side receive (process generator): returns (src, payload).

        With ``abort_event`` (e.g. a lease :class:`Timeout`), the wait
        races the inbox against the abort and returns ``None`` if the
        abort wins — the pending get is withdrawn so no later message
        is swallowed. If both trigger at the same instant the message
        wins (the inbox handoff schedules its callback first)."""
        self._check(endpoint)
        inbox = self._inboxes[endpoint]
        if abort_event is None:
            message = yield inbox.get()
        else:
            get_event = inbox.get()
            yield self.engine.any_of([get_event, abort_event])
            if not get_event.triggered:
                inbox.cancel_get(get_event)
                return None
            message = get_event.value
        self._release_credit(endpoint)
        yield self.engine.timeout(self.config.a9_receive_overhead_cycles)
        return message

    def counters(self) -> Dict[str, float]:
        """Point-in-time snapshot of the fabric's scalar counters
        (attached to :class:`~repro.cluster.recovery.ClusterError` and
        merged into the cluster counter registry)."""
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "retransmissions": self.retransmissions,
            "bytes_retransmitted": self.bytes_retransmitted,
            "inbox_stalls": self.inbox_stalls,
            "inbox_stall_cycles": self.inbox_stall_cycles,
            "partition_drops": self.partition_drops,
            "blackholed": self.blackholed,
            "credits_released_on_death": self.credits_released_on_death,
        }

    def link_utilization(self, endpoint: int) -> Tuple[float, float]:
        """(egress, ingress) utilization of one endpoint's links."""
        self._check(endpoint)
        return (
            self._egress[endpoint].utilization(),
            self._ingress[endpoint].utilization(),
        )
