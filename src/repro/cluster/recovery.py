"""Rack-level fault tolerance for distributed ``cluster_*`` jobs.

The paper scaled applications "across 500+ DPU clusters"; at that
scale whole-node failure is routine, not exceptional — and the
coordinator is just another node inside some failure domain. This
module adds the distributed-systems half of resilience on top of the
single-DPU machinery in :mod:`repro.faults`:

* **Failure detection** — an A9 control-plane detector generalized to
  all-to-all leases: every live DPU's A9 heartbeats every other live
  A9 over the :class:`~repro.cluster.network.IBFabric`. Receipt of a
  heartbeat renews the sender's lease in a table shared by every
  observer (a gossip-merged view: one peer hearing from a node keeps
  it alive for all, so a minority partition can never depose a leader
  the majority still hears). Lease >> heartbeat interval (validated
  in :class:`RecoveryConfig`), and leases are re-granted at every
  collect-phase start, so a fault-free run can never false-positive.

* **Leader election** — the coordinator role is leased, not pinned.
  When the current leader's lease expires at the surviving endpoints,
  the lowest live DPU index becomes the new leader (deterministic, no
  ballots needed: membership is totally ordered and every survivor
  shares the lease table). The election is recorded in
  ``RecoveryStats.leader_changes`` / ``elections``.

* **Replicated job journal** — before acting on a received shard, the
  leader's A9 streams an acknowledgement record (carrying the shard
  partial) to ``RecoveryConfig.standby_count`` standby A9s over the
  fabric. On takeover the new leader replays its journal replica:
  shards whose ack reached it are merged as-is; shards the old leader
  accepted but failed to replicate are simply re-requested — correct
  because every kernel is deterministic and the merge is idempotent.
  Replication traffic is surfaced as ``journal_bytes`` /
  ``journal_records``.

* **Deterministic recovery** — job inputs are DDR-resident on their
  home DPU *and* durable (row-sharded from host tables), so a lost
  shard is re-executed on a surviving DPU and yields the exact same
  partial. The merge is idempotent (per-shard dedup, merge in shard
  order), so retried, speculative and duplicate partials cannot
  change the result — the recovered answer is byte-equal to the
  fault-free reference even when the job ran under two leaders.

* **Epoch-tagged exchanges** — every message carries
  ``(job_tag, epoch)``. A death (worker or leader) bumps the epoch
  and invalidates the affected shards' assignments; packets from a
  dead epoch are discarded on arrival (``stale_discards``), so a
  restarted shuffle cannot consume bytes addressed under a stale
  ownership map — including uplinks still addressed to a dead leader.

* **Straggler mitigation** — a worker inside a seeded ``dpu.slow``
  window has its A9 job-side sends dilated by the spec's factor.
  When a shard stalls past the patience threshold while its owner's
  lease is current, the leader launches a speculative copy on a
  second DPU; first result wins through the same dedup.

The simulator constraint that shapes the control flow: ``dpu.launch``
drives the shared engine, so kernels cannot be launched from inside a
simulation process. Recovery therefore alternates *host-side* compute
(launches on current shard owners) with *bounded simulation phases*
(heartbeats + epoch-tagged sends + a lease-guarded collector at the
current leader + drain loops at every other live endpoint), looping
until every shard has arrived — the classic coordinator retry loop,
with the event clock advancing through every phase. A phase always
terminates: the leader's collector bounds itself by the stall
patience, and the drain loops exit on the shared phase-over flag, on
their own endpoint's death, or by reporting the leader's lease
expiry.

Activated only when the cluster's :class:`~repro.faults.FaultPlan`
carries chaos specs; ``FaultPlan.none()`` keeps every job on the
pre-existing code path, bit-identical to the equivalence goldens,
with no heartbeats and zero journal-replication bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.mailbox import A9_ID
from ..faults import FaultError
from ..sim import DeadlockError, Watchdog

__all__ = [
    "ClusterError",
    "RecoveryConfig",
    "RecoveryManager",
    "RecoveryStats",
]

HEARTBEAT_BYTES = 16  # one verbs inline send: seq + source id
JOURNAL_HEADER_BYTES = 32  # job tag + epoch + shard key + owner framing


class ClusterError(RuntimeError):
    """A distributed job failed fast instead of hanging.

    Carries the diagnosis a rack operator needs: which job, at what
    sim time, which DPUs were missing, which coordinator generation
    (``epoch``) under which ``leader`` was in charge, and the fabric
    counter snapshot at the moment of failure.
    """

    def __init__(
        self,
        site: str,
        cycle: float,
        missing: Sequence[int] = (),
        fabric: Optional[Dict[str, float]] = None,
        reason: str = "gather lease expired",
        epoch: Optional[int] = None,
        leader: Optional[int] = None,
    ) -> None:
        self.site = site
        self.cycle = float(cycle)
        self.missing = tuple(sorted(set(missing)))
        self.fabric = dict(fabric or {})
        self.reason = reason
        self.epoch = epoch
        self.leader = leader
        generation = ""
        if epoch is not None or leader is not None:
            generation = (f"epoch {epoch} under leader "
                          f"{leader}; ")
        super().__init__(
            f"cluster job {site!r} failed at cycle {self.cycle:.0f}: "
            f"{reason}; missing DPUs {list(self.missing)}; "
            f"{generation}fabric counters {self.fabric}"
        )


@dataclass(frozen=True)
class RecoveryConfig:
    """Detector and retry tuning (cycles at the DPU clock)."""

    # Peer A9 -> peer A9 heartbeat period (all-to-all). Also the
    # granule at which a waiting collector wakes to re-evaluate leases.
    heartbeat_interval_cycles: float = 50_000.0
    # Liveness lease: a peer with no heartbeat for this long is
    # declared dead. Must dominate several heartbeat round trips
    # (interval + verbs overheads + switch latency) so a live,
    # unpartitioned peer can never be declared dead.
    lease_cycles: float = 250_000.0
    # A shard whose owner is still leased-alive but whose partial has
    # not arrived for this long is considered stuck (partition in
    # flight or straggler) and triggers a resend, then a speculative
    # re-execution on a second DPU.
    stall_patience_cycles: float = 300_000.0
    # Host-side retry budget: rounds of (compute, send, collect) per
    # job phase before giving up with ClusterError.
    max_rounds: int = 12
    # Per-phase event budget (livelock guard on the shared engine).
    watchdog_events: int = 50_000_000
    # Standby A9s the leader replicates its job journal to, so a
    # takeover can replay received-shard acknowledgements instead of
    # re-running the whole job. 0 disables replication (a leader kill
    # then re-runs every shard not yet merged).
    standby_count: int = 1

    def __post_init__(self) -> None:
        if self.heartbeat_interval_cycles <= 0:
            raise FaultError(
                f"heartbeat interval must be positive: "
                f"{self.heartbeat_interval_cycles}"
            )
        if self.lease_cycles < 4 * self.heartbeat_interval_cycles:
            raise FaultError(
                f"lease {self.lease_cycles} must cover >= 4 heartbeat "
                f"intervals of {self.heartbeat_interval_cycles} — a "
                "tighter lease can declare a live worker dead"
            )
        if self.stall_patience_cycles < self.lease_cycles:
            raise FaultError(
                f"stall patience {self.stall_patience_cycles} must be >= "
                f"the lease {self.lease_cycles}: a dead owner should be "
                "declared before its shard is treated as merely stuck"
            )
        if self.max_rounds < 1:
            raise FaultError(f"max_rounds must be >= 1: {self.max_rounds}")
        if self.standby_count < 0:
            raise FaultError(
                f"standby_count must be >= 0: {self.standby_count}"
            )


@dataclass
class RecoveryStats:
    """Per-job recovery outcome (reset at every job start)."""

    site: str = ""
    rounds: int = 0
    epochs: int = 0
    heartbeats_sent: int = 0
    reexecuted_shards: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    stale_discards: int = 0
    duplicates: int = 0
    resends: int = 0
    # (dpu index, declared-at cycle, detection latency in cycles from
    # the injected failure instant — None if no spec matches).
    detections: List[Tuple[int, float, Optional[float]]] = field(
        default_factory=list
    )
    declared_dead: Tuple[int, ...] = ()
    # Coordinator failover: one entry per takeover as
    # (old leader, new leader, elected-at cycle, election latency in
    # cycles from the injected failure instant — None if no spec
    # matches).
    leader_changes: int = 0
    elections: List[Tuple[int, int, float, Optional[float]]] = field(
        default_factory=list
    )
    # Journal replication cost (leader -> standby acknowledgement
    # stream); zero without chaos, zero with standby_count=0.
    journal_records: int = 0
    journal_bytes: int = 0

    @property
    def detection_latency_cycles(self) -> Optional[float]:
        """Latency of the first declaration this job made."""
        for _dpu, _cycle, latency in self.detections:
            if latency is not None:
                return latency
        return None

    @property
    def leader_election_latency_cycles(self) -> Optional[float]:
        """Kill-instant-to-takeover latency of the first election."""
        for _old, _new, _cycle, latency in self.elections:
            if latency is not None:
                return latency
        return None

    def counters(self) -> Dict[str, float]:
        """Scalar view for the cluster counter registry."""
        latency = self.detection_latency_cycles
        election = self.leader_election_latency_cycles
        return {
            "rounds": self.rounds,
            "epochs": self.epochs,
            "heartbeats_sent": self.heartbeats_sent,
            "reexecuted_shards": self.reexecuted_shards,
            "speculative_launches": self.speculative_launches,
            "speculative_wins": self.speculative_wins,
            "stale_discards": self.stale_discards,
            "duplicates": self.duplicates,
            "resends": self.resends,
            "detections": len(self.detections),
            "detection_latency_cycles": (
                latency if latency is not None else 0.0
            ),
            "leader_changes": self.leader_changes,
            "leader_election_latency_cycles": (
                election if election is not None else 0.0
            ),
            "journal_records": self.journal_records,
            "journal_bytes": self.journal_bytes,
        }


class RecoveryManager:
    """Leader-side fault tolerance for one :class:`Cluster`.

    Owns the failure detector state (leases, declared-dead set), the
    current leader and its standby set, the replicated job journal,
    the global epoch counter, and the retry loops that run every
    ``cluster_*`` job to completion under the cluster's chaos plan.
    Any DPU — including the initial coordinator, DPU 0 — may be a
    chaos target: a killed leader is detected by the surviving
    endpoints' lease checks and the lowest live index takes over.
    """

    def __init__(self, cluster, config: Optional[RecoveryConfig] = None) -> None:
        self.cluster = cluster
        self.config = config if config is not None else RecoveryConfig()
        self.plan = cluster.faults.plan
        self.stats = RecoveryStats()
        self.declared_dead: Set[int] = set()
        # Gossip-merged lease table: peer index -> last cycle any live
        # endpoint drained one of its heartbeats.
        self.last_seen: Dict[int, float] = {}
        self.epoch = 0
        self.leader = 0
        self._job_tag = 0
        self._hb_generation = 0
        self._slow = self.plan.chaos_for("dpu.slow")
        self._installed = False
        # Standby replicas of the leader's ack journal:
        # endpoint -> {shard key -> (value, owner)}; reset per job.
        self._journal: Dict[int, Dict[Any, Tuple[Any, int]]] = {}
        # Final slot -> owner map of the most recent run_exchange, so
        # the caller can run post-shuffle local compute (and the gather
        # that follows) on the DPUs that actually own each slot.
        self.last_slot_owner: Dict[int, int] = {}

    # -- chaos installation -------------------------------------------------

    def install(self) -> None:
        """Register the plan's scheduled kills and partition windows
        with the fabric. Any DPU — including the initial coordinator,
        DPU 0 — may be targeted; the only invariant is that at least
        one DPU survives to finish the job. Idempotent; called at
        cluster construction."""
        if self._installed:
            return
        self._installed = True
        fabric = self.cluster.fabric
        doomed: Set[int] = set()
        for spec in self.plan.chaos_for("dpu.dead"):
            for target in spec.targets:
                if target < self.cluster.num_dpus:
                    doomed.add(target)
                    fabric.schedule_kill(target, spec.at_cycle)
        if len(doomed) >= self.cluster.num_dpus:
            raise FaultError(
                f"chaos plan kills all {self.cluster.num_dpus} DPUs — "
                "at least one must survive to complete the job"
            )
        for spec in self.plan.chaos_for("fabric.partition"):
            targets = [t for t in spec.targets if t < self.cluster.num_dpus]
            if targets:
                fabric.sever(targets, spec.at_cycle, spec.end_cycle)

    def slow_delay(self, dpu_index: int) -> float:
        """Extra A9-side cycles for a job send beginning now on a
        straggling DPU: work inside a ``dpu.slow`` window runs at
        ``1/factor`` speed, so the window's remainder stretches by
        ``(factor - 1) x``."""
        if not self._slow:
            return 0.0
        now = self.cluster.engine.now
        extra = 0.0
        for spec in self._slow:
            if dpu_index in spec.targets and spec.at_cycle <= now < spec.end_cycle:
                extra += (spec.end_cycle - now) * (spec.factor - 1.0)
        return extra

    # -- membership ---------------------------------------------------------

    def alive(self) -> List[int]:
        """DPUs the detector currently believes are alive."""
        return [i for i in range(self.cluster.num_dpus)
                if i not in self.declared_dead]

    def standbys(self) -> List[int]:
        """The journal replica set: the ``standby_count`` lowest live
        indices after the current leader (recomputed per phase, so a
        dead standby is replaced at the next round)."""
        if self.config.standby_count <= 0:
            return []
        live = [i for i in self.alive() if i != self.leader]
        return live[:self.config.standby_count]

    def _survivor_for(self, key: Any, exclude: Tuple[int, ...] = ()) -> int:
        """Deterministic survivor choice for a lost/stuck shard."""
        candidates = [i for i in self.alive() if i not in exclude]
        if not candidates:
            raise self._error(
                self.stats.site, sorted(self.declared_dead),
                "no surviving DPUs to re-execute on",
            )
        return candidates[hash(key) % len(candidates)]

    def _error(self, site: str, missing: Sequence[int],
               reason: str) -> ClusterError:
        """Build a ClusterError carrying the current coordinator
        generation, emitting the post-mortem trace instant."""
        fabric = self.cluster.fabric
        if fabric.trace.enabled:
            fabric.trace.instant(
                "cluster.error", unit="cluster", site=site,
                epoch=self.epoch, leader=self.leader, reason=reason,
            )
        return ClusterError(
            site, self.cluster.engine.now, missing=missing,
            fabric=fabric.counters(), reason=reason,
            epoch=self.epoch, leader=self.leader,
        )

    def _declare(self, victims: Sequence[int]) -> None:
        """Process lease expiries: mark dead, free fabric credits owed
        by the corpse, record detection latency against the injected
        failure instant."""
        engine = self.cluster.engine
        fabric = self.cluster.fabric
        now = engine.now
        for victim in sorted(victims):
            if victim in self.declared_dead:
                continue
            self.declared_dead.add(victim)
            fabric.declare_dead(victim)
            injected = [
                spec.at_cycle for spec in self.plan.chaos
                if victim in spec.targets and spec.at_cycle <= now
            ]
            latency = now - max(injected) if injected else None
            self.stats.detections.append((victim, now, latency))
            if fabric.trace.enabled:
                fabric.trace.instant(
                    "recover.declare_dead", unit="cluster",
                    dpu=victim, latency=latency,
                )
            metrics = self.cluster.metrics
            if metrics.enabled:
                metrics.annotate("recover.declare_dead", dpu=victim,
                                 latency=latency)
        self.stats.declared_dead = tuple(sorted(self.declared_dead))

    def _takeover(self, old_leader: int) -> int:
        """Depose ``old_leader`` and elect the lowest live index.

        Called when the surviving endpoints report the leader's lease
        expired. Declares the old leader dead, bumps the epoch (stale
        uplinks addressed to the corpse are discarded on arrival), and
        records the election with its kill-to-takeover latency."""
        engine = self.cluster.engine
        fabric = self.cluster.fabric
        now = engine.now
        self._declare([old_leader])
        alive = self.alive()
        if not alive:
            raise self._error(
                self.stats.site, sorted(self.declared_dead),
                "no surviving DPUs to elect a leader from",
            )
        new_leader = min(alive)
        self.leader = new_leader
        self.epoch += 1
        self.stats.epochs += 1
        self.stats.leader_changes += 1
        injected = [
            spec.at_cycle for spec in self.plan.chaos
            if old_leader in spec.targets and spec.at_cycle <= now
        ]
        latency = now - max(injected) if injected else None
        self.stats.elections.append((old_leader, new_leader, now, latency))
        if fabric.trace.enabled:
            fabric.trace.instant(
                "recover.leader_elected", unit="cluster",
                old_leader=old_leader, new_leader=new_leader,
                epoch=self.epoch, latency=latency,
            )
        metrics = self.cluster.metrics
        if metrics.enabled:
            metrics.annotate("recover.leader_elected",
                             old_leader=old_leader, new_leader=new_leader,
                             epoch=self.epoch)
        return new_leader

    def _grant_leases(self) -> None:
        """Re-grant every live peer a full lease. Called at each
        collect-phase start so silence accrued while the host ran
        local compute (when nobody was draining heartbeats) can never
        be mistaken for death."""
        now = self.cluster.engine.now
        for index in self.alive():
            current = self.last_seen.get(index, now)
            self.last_seen[index] = max(current, now)

    # -- job lifecycle ------------------------------------------------------

    def begin_job(self, site: str) -> None:
        """Reset per-job stats and journal, bump the job tag (stale
        cross-job packets are discarded on arrival), start heartbeat
        daemons."""
        self._job_tag += 1
        self.stats = RecoveryStats(site=site)
        self._journal = {}
        if self.leader in self.declared_dead:
            # A takeover in an earlier job already counted the change;
            # this only re-derives the invariant leader = min(alive).
            self.leader = min(self.alive())
        self._grant_leases()
        self._start_heartbeats()

    def end_job(self) -> None:
        """Retire this job's heartbeat daemons (each exits at its next
        wakeup; the generation check makes leftovers inert)."""
        self._hb_generation += 1

    def _start_heartbeats(self) -> None:
        engine = self.cluster.engine
        fabric = self.cluster.fabric
        interval = self.config.heartbeat_interval_cycles
        self._hb_generation += 1
        generation = self._hb_generation

        for index in self.alive():

            def daemon(index=index):
                sequence = 0
                while generation == self._hb_generation:
                    if fabric.endpoint_dead(index):
                        return
                    # Fire-and-forget per-peer sends: one slow or dead
                    # peer's backpressure must not delay the beats the
                    # other peers use to keep this node leased.
                    for peer in self.alive():
                        if peer == index:
                            continue
                        engine.process(
                            fabric.send(index, peer,
                                        ("hb", index, sequence),
                                        HEARTBEAT_BYTES),
                            name=f"recover.hb[{index}->{peer}]",
                            daemon=True,
                        )
                        self.stats.heartbeats_sent += 1
                    sequence += 1
                    yield engine.timeout(interval)

            engine.process(daemon(), name=f"recover.hb[{index}]", daemon=True)

    # -- bounded simulation phases ------------------------------------------

    def _drive(self, gate, site: str, missing_owners: Sequence[int]):
        """Run the engine until ``gate`` completes, converting engine
        deadlock/livelock into a structured ClusterError."""
        engine = self.cluster.engine
        previous = engine.watchdog
        engine.watchdog = Watchdog(max_events=self.config.watchdog_events)
        metrics = self.cluster.metrics
        if metrics.enabled:
            metrics.touch()
        try:
            return engine.run_until_complete(gate, limit=10**13)
        except DeadlockError as error:
            raise self._error(site, missing_owners, str(error)) from error
        finally:
            engine.watchdog = previous
            if metrics.enabled:
                metrics.flush()

    def _collector(self, endpoint: int, kind: str, needed: Set[Any],
                   arrivals: Dict[Any, Tuple[Any, int, int]],
                   min_epoch: Dict[Any, int],
                   leader: int, phase_over: List[bool],
                   local_keys: Optional[Callable[[], Set[Any]]] = None,
                   watch: Optional[Callable[[], Dict[Any, int]]] = None,
                   standbys: Sequence[int] = (),
                   journal: bool = False):
        """Build one lease-guarded collector process for ``endpoint``.

        Drains epoch-tagged ``kind`` messages into ``arrivals`` as
        ``key -> (value, sender endpoint, receiver endpoint)`` (dedup
        by key, first result wins), heartbeats into the lease table,
        and journal records into the local replica. The leader-role
        collector (``endpoint == leader``) replicates each accepted
        acknowledgement to the ``standbys`` *before* recording the
        arrival (when ``journal`` is set), evaluates worker leases via
        ``watch``, and bounds the phase by the stall patience; every
        other collector keeps draining until the shared ``phase_over``
        flag flips, reporting ``("leader_dead", [leader])`` if the
        leader's lease expires first. All roles return ``("halted",
        [])`` if their own endpoint is past its fail-stop instant — a
        phase can therefore never hang until the global watchdog.
        """
        engine = self.cluster.engine
        fabric = self.cluster.fabric
        config = self.config
        mine = local_keys if local_keys is not None else (lambda: needed)
        is_leader = endpoint == leader

        def process():
            last_progress = engine.now
            while True:
                if fabric.endpoint_dead(endpoint):
                    return ("halted", [])
                if phase_over[0]:
                    return ("done", [])
                if is_leader and not needed:
                    phase_over[0] = True
                    return ("done", [])
                abort = engine.timeout(config.heartbeat_interval_cycles)
                message = yield from fabric.receive(endpoint,
                                                    abort_event=abort)
                if message is not None:
                    abort.cancel()
                    if fabric.endpoint_dead(endpoint):
                        # Killed while the frame was in its inbox: a
                        # corpse must not ack or journal anything.
                        return ("halted", [])
                    src, payload = message
                    label = payload[0]
                    if label == "hb":
                        if payload[1] not in self.declared_dead:
                            self.last_seen[payload[1]] = engine.now
                    elif label == "jrn":
                        (_label, msg_tag, _epoch, jkey, jowner, jvalue,
                         _nbytes) = payload
                        if msg_tag == self._job_tag:
                            self._journal.setdefault(
                                endpoint, {})[jkey] = (jvalue, jowner)
                    elif label == kind:
                        (_label, msg_tag, epoch, key, owner, value,
                         nbytes) = payload
                        if msg_tag != self._job_tag or key not in min_epoch:
                            self.stats.stale_discards += 1
                        elif epoch < min_epoch[key]:
                            self.stats.stale_discards += 1
                        elif key not in needed:
                            self.stats.duplicates += 1
                        else:
                            if is_leader and journal and standbys:
                                # Replicate-before-ack: the record is
                                # on the wire to every standby before
                                # the leader treats the shard as
                                # received.
                                record = ("jrn", msg_tag, epoch, key,
                                          owner, value, nbytes)
                                for standby in standbys:
                                    self.stats.journal_records += 1
                                    self.stats.journal_bytes += (
                                        nbytes + JOURNAL_HEADER_BYTES)
                                    yield from fabric.send(
                                        endpoint, standby, record,
                                        nbytes + JOURNAL_HEADER_BYTES,
                                    )
                                if fabric.trace.enabled:
                                    fabric.trace.instant(
                                        "recover.journal", unit="cluster",
                                        key=repr(key),
                                        standbys=len(standbys),
                                        bytes=nbytes + JOURNAL_HEADER_BYTES,
                                    )
                            if key in needed:
                                needed.discard(key)
                                arrivals[key] = (value, src, endpoint)
                            else:
                                self.stats.duplicates += 1
                            last_progress = engine.now
                    else:
                        # A different phase's payload family (e.g. an
                        # exchange pair landing during a gather): from
                        # an invalidated schedule, so it is stale.
                        self.stats.stale_discards += 1
                now = engine.now
                if is_leader and watch is not None:
                    owners = watch()
                    # The leader is the detector itself: it sends no
                    # heartbeats to itself, so it is never a suspect.
                    victims = sorted({
                        owner for owner in owners.values()
                        if owner != leader
                        and owner not in self.declared_dead
                        and now - self.last_seen.get(owner, now)
                        > config.lease_cycles
                    })
                    if victims:
                        phase_over[0] = True
                        return ("dead", victims)
                if not is_leader:
                    if (leader not in self.declared_dead
                            and now - self.last_seen.get(leader, now)
                            > config.lease_cycles):
                        phase_over[0] = True
                        return ("leader_dead", [leader])
                if (is_leader and (mine() or needed)
                        and now - last_progress
                        > config.stall_patience_cycles):
                    phase_over[0] = True
                    return ("stalled", [])

        return engine.process(
            process(), name=f"recover.collect[{endpoint}]"
        )

    def _drainer(self, endpoint: int, leader: int,
                 phase_over: List[bool]):
        """Heartbeat/journal drain loop for a live endpoint with no
        collect role this phase. Keeps the endpoint's inbox (and its
        receive credits) flowing, applies journal records to the local
        replica, and is the detection path for leader death: when the
        leader's lease expires here, the phase ends with
        ``("leader_dead", [leader])``."""
        engine = self.cluster.engine
        fabric = self.cluster.fabric
        config = self.config

        def process():
            while True:
                if fabric.endpoint_dead(endpoint):
                    return ("halted", [])
                if phase_over[0]:
                    return ("done", [])
                abort = engine.timeout(config.heartbeat_interval_cycles)
                message = yield from fabric.receive(endpoint,
                                                    abort_event=abort)
                if message is not None:
                    abort.cancel()
                    if fabric.endpoint_dead(endpoint):
                        return ("halted", [])
                    _src, payload = message
                    label = payload[0]
                    if label == "hb":
                        if payload[1] not in self.declared_dead:
                            self.last_seen[payload[1]] = engine.now
                    elif label == "jrn":
                        (_label, msg_tag, _epoch, key, owner, value,
                         _nbytes) = payload
                        if msg_tag == self._job_tag:
                            self._journal.setdefault(
                                endpoint, {})[key] = (value, owner)
                    else:
                        self.stats.stale_discards += 1
                now = engine.now
                if (leader not in self.declared_dead
                        and now - self.last_seen.get(leader, now)
                        > config.lease_cycles):
                    phase_over[0] = True
                    return ("leader_dead", [leader])

        return engine.process(
            process(), name=f"recover.drain[{endpoint}]"
        )

    def _spawn_sender(self, owner: int, dst: int, kind: str, key: Any,
                      value: Any, nbytes: int) -> None:
        """Paper-faithful send path with dilation: core 0 mailboxes the
        result pointer to the local A9; the A9 (dilated when inside a
        ``dpu.slow`` window) ships the epoch-tagged message to the
        current leader. The payload rides the mailbox so two in-flight
        sends on one DPU can never cross-deliver."""
        cluster = self.cluster
        engine = cluster.engine
        fabric = cluster.fabric
        dpu = cluster.dpus[owner]
        tag, epoch = self._job_tag, self.epoch

        def core_side():
            core = dpu.context(0)
            yield from core.mbox_send(A9_ID, (key, value, nbytes))

        def a9_side():
            _src, (msg_key, msg_value, msg_bytes) = (
                yield from dpu.mailbox.receive(A9_ID)
            )
            delay = self.slow_delay(owner)
            if delay:
                yield engine.timeout(delay)
            yield from fabric.send(
                owner, dst,
                (kind, tag, epoch, msg_key, owner, msg_value, msg_bytes),
                msg_bytes,
            )

        engine.process(core_side(), name=f"recover.core[{owner}]")
        engine.process(a9_side(), name=f"recover.uplink[{owner}]")

    # -- the merge-family retry loop ----------------------------------------

    def run_job(
        self,
        site: str,
        compute: Callable[[int, Any, int], Any],
        merge: Callable[[Any, Any], Any],
        nbytes_of: Callable[[Any], int],
        owners: Optional[Dict[int, int]] = None,
        num_shards: Optional[int] = None,
    ) -> Tuple[Any, float]:
        """Run a merge-family job to completion under faults.

        ``compute(shard, dpu, dpu_index)`` is host-side (it may call
        ``dpu.launch``) and must be deterministic — re-execution on a
        survivor must reproduce the lost partial exactly. Partials are
        merged in shard order after per-shard dedup, so duplicates and
        speculative copies cannot perturb the result, and the merge
        happens exactly once, on the final leader, after every shard
        has arrived — one result per job even when the job internally
        ran under two leaders. Returns ``(merged value, phase
        cycles)``.
        """
        cluster = self.cluster
        engine = cluster.engine
        config = self.config
        count = num_shards if num_shards is not None else cluster.num_dpus
        shard_owner: Dict[int, int] = (
            dict(owners) if owners else {k: k for k in range(count)}
        )
        rerouted: Set[int] = set()
        for key in sorted(shard_owner):
            if shard_owner[key] in self.declared_dead:
                shard_owner[key] = self._survivor_for(key)
                rerouted.add(key)
        began = engine.now
        needed: Set[int] = set(range(count))
        arrivals: Dict[int, Tuple[Any, int, int]] = {}
        min_epoch = {key: self.epoch for key in needed}
        values: Dict[int, Any] = {}
        value_owner: Dict[int, int] = {}
        stall_strikes: Dict[int, int] = {key: 0 for key in needed}
        backups: Dict[int, int] = {}

        for round_index in range(config.max_rounds):
            self.stats.rounds += 1
            leader = self.leader
            standbys = self.standbys()
            # Host phase: (re-)execute missing shards on their current
            # owners from the durable inputs.
            for key in sorted(needed):
                owner = shard_owner[key]
                if value_owner.get(key) != owner:
                    recompute = key in value_owner or key in rerouted
                    values[key] = compute(key, cluster.dpus[owner], owner)
                    value_owner[key] = owner
                    if recompute:
                        self.stats.reexecuted_shards += 1
            # Simulation phase: epoch-tagged sends race the detector's
            # lease-guarded collector at the current leader, with a
            # drain loop on every other live endpoint.
            for key in sorted(needed):
                if round_index > 0:
                    self.stats.resends += 1
                self._spawn_sender(
                    shard_owner[key], leader, "data", key, values[key],
                    nbytes_of(values[key]),
                )
            self._grant_leases()
            phase_over = [False]
            collector = self._collector(
                leader, "data", needed, arrivals, min_epoch,
                leader=leader, phase_over=phase_over,
                watch=lambda: {k: shard_owner[k] for k in needed},
                standbys=standbys, journal=True,
            )
            drainers = [
                self._drainer(endpoint, leader, phase_over)
                for endpoint in self.alive() if endpoint != leader
            ]
            participants = [collector] + drainers
            self._drive(
                engine.all_of(participants), site,
                sorted({shard_owner[k] for k in needed}),
            )
            dethroned = any(
                p.value[0] == "leader_dead" for p in participants
            )
            status, victims = collector.value
            if dethroned:
                self._takeover(leader)
                # Journal replay: the new leader knows exactly the
                # acknowledgements that reached its replica; anything
                # the old leader accepted but failed to replicate is
                # simply re-requested under the new epoch.
                replica = self._journal.get(self.leader, {})
                metrics = self.cluster.metrics
                if metrics.enabled:
                    metrics.annotate("recover.journal_replay",
                                     leader=self.leader,
                                     records=len(replica))
                arrivals.clear()
                for key, (value, owner) in replica.items():
                    if key in min_epoch:
                        arrivals[key] = (value, owner, self.leader)
                needed.clear()
                needed.update(k for k in range(count)
                              if k not in arrivals)
                for key in sorted(needed):
                    min_epoch[key] = self.epoch
                    if shard_owner[key] in self.declared_dead:
                        shard_owner[key] = self._survivor_for(key)
                        rerouted.add(key)
                if not needed:
                    break
            elif status == "done":
                break
            elif status == "dead":
                self._declare(victims)
                self.epoch += 1
                self.stats.epochs += 1
                for key in sorted(needed):
                    if shard_owner[key] in self.declared_dead:
                        shard_owner[key] = self._survivor_for(key)
                        min_epoch[key] = self.epoch
            else:  # stalled: resend, then speculate on a second DPU
                for key in sorted(needed):
                    stall_strikes[key] += 1
                    if stall_strikes[key] >= 2 and key not in backups:
                        owner = shard_owner[key]
                        backup = self._survivor_for(key, exclude=(owner,))
                        backups[key] = backup
                        self.stats.speculative_launches += 1
                        if self.cluster.metrics.enabled:
                            self.cluster.metrics.annotate(
                                "recover.speculative_launch",
                                shard=key, backup=backup,
                            )
                        backup_value = compute(key, cluster.dpus[backup],
                                               backup)
                        self._spawn_sender(
                            backup, self.leader, "data", key, backup_value,
                            nbytes_of(backup_value),
                        )
        if needed:
            raise self._error(
                site, sorted({shard_owner[k] for k in needed}),
                f"recovery budget of {config.max_rounds} rounds "
                f"exhausted with shards {sorted(needed)} missing",
            )
        self.stats.speculative_wins += sum(
            1 for key, backup in backups.items()
            if key in arrivals and arrivals[key][1] == backup
        )
        merged = None
        for key in range(count):
            merged = merge(merged, arrivals[key][0])
        return merged, engine.now - began

    # -- the restartable exchange -------------------------------------------

    def run_exchange(self, site: str, tables: Sequence, key: str,
                     names: Sequence[str]):
        """Epoch-tagged, restartable all-to-all over logical slots.

        The slot space stays the original power-of-two fanout (the
        hash engine's radix does not change when a node dies); a dead
        slot owner's shard — the leader's included — is re-partitioned
        on a survivor from the durable host table and its pairs
        re-sent under a new epoch. The leader replicates the round's
        epoch and slot-owner map to its standbys so a takeover resumes
        the exchange instead of restarting it. Returns a
        :class:`~repro.cluster.shuffle.ShuffleResult`.
        """
        from .shuffle import ShuffleResult, partition_source

        cluster = self.cluster
        engine = cluster.engine
        config = self.config
        # Key column first — the layout partition_source serialises.
        names = [key] + [n for n in names if n != key]
        num_slots = cluster.num_dpus
        slots = range(num_slots)
        slot_owner: Dict[int, int] = {}
        for slot in slots:
            slot_owner[slot] = (slot if slot not in self.declared_dead
                                else self._survivor_for(slot))

        partitions: Dict[int, List[np.ndarray]] = {}
        partition_owner: Dict[int, int] = {}
        partition_cycles = 0.0
        record_width = 0
        dtypes = None
        exchange_began = engine.now
        arrivals: Dict[Tuple[int, int], Tuple[np.ndarray, int, int]] = {}
        min_epoch: Dict[Tuple[int, int], int] = {
            (s, d): self.epoch for s in slots for d in slots if s != d
        }
        stall_strikes: Dict[Tuple[int, int], int] = {}
        backups: Dict[Tuple[int, int], int] = {}

        def pending_pairs() -> List[Tuple[int, int]]:
            return [
                (s, d) for s in slots for d in slots
                if slot_owner[s] != slot_owner[d] and (s, d) not in arrivals
            ]

        for round_index in range(config.max_rounds):
            self.stats.rounds += 1
            leader = self.leader
            standbys = self.standbys()
            # Host phase: partition every slot's shard on its current
            # owner (the DMS hash-engine kernel; deterministic bytes).
            for slot in slots:
                owner = slot_owner[slot]
                if partition_owner.get(slot) == owner:
                    continue
                dpu = cluster.dpus[owner]
                dtable = tables[slot].to_dpu(dpu)
                raws, cycles, record_width, dtypes = partition_source(
                    dpu, dtable, key, names, num_slots
                )
                partitions[slot] = raws
                partition_owner[slot] = owner
                partition_cycles = max(partition_cycles, cycles)
                if round_index > 0:
                    self.stats.reexecuted_shards += 1
            pending = pending_pairs()
            if not pending:
                break
            needed: Set[Tuple[int, int]] = set(pending)
            # Leader -> standby journal of this round's coordination
            # state (epoch + slot-owner map), so a takeover resumes
            # under a known map instead of a restart from scratch.
            if standbys:
                self._replicate_exchange_state(leader, standbys,
                                               slot_owner, round_index)
            # Rotated sends (src owner s ships to s+1, s+2, ... to
            # avoid synchronized bursts), one epoch-tagged message per
            # (src slot, dst slot) pair.
            by_owner: Dict[int, List[Tuple[int, int]]] = {}
            for pair in pending:
                by_owner.setdefault(slot_owner[pair[0]], []).append(pair)
            for owner, pairs in sorted(by_owner.items()):
                pairs.sort(key=lambda pair: (
                    (slot_owner[pair[1]] - owner) % num_slots, pair
                ))
                for src_slot, dst_slot in pairs:
                    if round_index > 0:
                        self.stats.resends += 1
                    raw = partitions[src_slot][dst_slot]
                    self._spawn_exchange_sender(
                        owner, slot_owner[dst_slot],
                        (src_slot, dst_slot), raw,
                    )
            self._grant_leases()
            phase_over = [False]
            dest_owners = sorted({slot_owner[d] for _s, d in pending})
            watched = {
                pair: slot_owner[pair[0]] for pair in pending
            }
            watched.update({
                (pair, "dst"): slot_owner[pair[1]] for pair in pending
            })
            collectors = []
            for endpoint in dest_owners:
                local = {
                    pair for pair in needed
                    if slot_owner[pair[1]] == endpoint
                }
                collectors.append(self._collector(
                    endpoint, "x", needed, arrivals, min_epoch,
                    leader=leader, phase_over=phase_over,
                    local_keys=lambda local=local: local & needed,
                    watch=(lambda: watched) if endpoint == leader else None,
                ))
            if leader not in dest_owners:
                # Keep the detector draining heartbeats even when the
                # leader receives no pairs this round.
                collectors.append(self._collector(
                    leader, "x", needed, arrivals, min_epoch,
                    leader=leader, phase_over=phase_over,
                    local_keys=lambda: set(),
                    watch=lambda: watched,
                ))
            drainers = [
                self._drainer(endpoint, leader, phase_over)
                for endpoint in self.alive()
                if endpoint != leader and endpoint not in dest_owners
            ]
            participants = collectors + drainers
            self._drive(
                engine.all_of(participants), site,
                sorted({slot_owner[s] for s, _d in pending_pairs()}),
            )
            dethroned = any(
                p.value[0] == "leader_dead" for p in participants
            )
            victims = []
            for participant in participants:
                status, found = participant.value
                if status == "dead":
                    victims.extend(found)
            if dethroned:
                self._takeover(leader)
            elif victims:
                self._declare(victims)
                self.epoch += 1
                self.stats.epochs += 1
            if dethroned or victims:
                for slot in slots:
                    if slot_owner[slot] in self.declared_dead:
                        slot_owner[slot] = self._survivor_for(slot)
                # Pairs received *at* a now-dead owner (the old leader
                # included) died with its DRAM; pairs *from* a dead
                # owner were sent under an invalidated map. Both
                # restart under the new epoch.
                for pair in list(arrivals):
                    if arrivals[pair][2] in self.declared_dead:
                        del arrivals[pair]
                for pair in min_epoch:
                    if pair not in arrivals:
                        min_epoch[pair] = self.epoch
            else:
                for pair in pending_pairs():
                    stall_strikes[pair] = stall_strikes.get(pair, 0) + 1
                    if stall_strikes[pair] >= 2 and pair not in backups:
                        owner = slot_owner[pair[0]]
                        backup = self._survivor_for(pair, exclude=(owner,))
                        backups[pair] = backup
                        self.stats.speculative_launches += 1
                        if self.cluster.metrics.enabled:
                            self.cluster.metrics.annotate(
                                "recover.speculative_launch",
                                pair=str(pair), backup=backup,
                            )
                        self._spawn_exchange_sender(
                            backup, slot_owner[pair[1]], pair,
                            partitions[pair[0]][pair[1]],
                        )
        remaining = pending_pairs()
        if remaining:
            raise self._error(
                site, sorted({slot_owner[s] for s, _d in remaining}),
                f"exchange budget of {config.max_rounds} rounds "
                f"exhausted with pairs {sorted(remaining)} missing",
            )
        self.stats.speculative_wins += sum(
            1 for pair, backup in backups.items()
            if pair in arrivals and arrivals[pair][1] == backup
        )
        self.last_slot_owner = dict(slot_owner)

        # Reassembly in source-slot order (deterministic regardless of
        # arrival order), exactly like the fault-free exchange.
        from ..apps.sql.aggregate import _parse_records

        columns: List[Dict[str, np.ndarray]] = []
        rows_moved = 0
        bytes_moved = 0
        for dst in slots:
            parts = []
            for src in slots:
                if src == dst or slot_owner[src] == slot_owner[dst]:
                    raw = partitions[src][dst]
                else:
                    raw = arrivals[(src, dst)][0]
                if src != dst:
                    rows_moved += (raw.nbytes // record_width
                                   if record_width else 0)
                    bytes_moved += int(raw.nbytes)
                if raw.nbytes:
                    parts.append(raw)
            raw_all = (np.concatenate(parts) if parts
                       else np.empty(0, dtype=np.uint8))
            arrays = _parse_records(raw_all, dtypes)
            columns.append(dict(zip(names, arrays)))
        return ShuffleResult(
            columns=columns,
            partition_cycles=partition_cycles,
            exchange_cycles=engine.now - exchange_began,
            rows_moved=rows_moved,
            bytes_moved=bytes_moved,
        )

    def _replicate_exchange_state(self, leader: int,
                                  standbys: Sequence[int],
                                  slot_owner: Dict[int, int],
                                  round_index: int) -> None:
        """Stream the round's coordination record (epoch + slot-owner
        map) from the leader's A9 to each standby, before any pair of
        the round is acted on (the sends are spawned ahead of the
        collect phase)."""
        engine = self.cluster.engine
        fabric = self.cluster.fabric
        tag, epoch = self._job_tag, self.epoch
        owner_map = tuple(sorted(slot_owner.items()))
        nbytes = JOURNAL_HEADER_BYTES + 8 * len(owner_map)
        record = ("jrn", tag, epoch, ("xctl", round_index), leader,
                  owner_map, nbytes)
        for standby in standbys:
            self.stats.journal_records += 1
            self.stats.journal_bytes += nbytes
            engine.process(
                fabric.send(leader, standby, record, nbytes),
                name=f"recover.jctl[{leader}->{standby}]",
                daemon=True,
            )

    def _spawn_exchange_sender(self, src_endpoint: int, dst_endpoint: int,
                               pair: Tuple[int, int],
                               raw: np.ndarray) -> None:
        """One epoch-tagged pair transfer between A9 endpoints, with
        straggler dilation on the sending side."""
        cluster = self.cluster
        engine = cluster.engine
        fabric = cluster.fabric
        dpu = cluster.dpus[src_endpoint]
        tag, epoch = self._job_tag, self.epoch

        def core_side():
            core = dpu.context(0)
            yield from core.mbox_send(A9_ID, (pair, raw, int(raw.nbytes)))

        def a9_side():
            _src, (msg_pair, payload, nbytes) = (
                yield from dpu.mailbox.receive(A9_ID)
            )
            delay = self.slow_delay(src_endpoint)
            if delay:
                yield engine.timeout(delay)
            yield from fabric.send(
                src_endpoint, dst_endpoint,
                ("x", tag, epoch, msg_pair, src_endpoint, payload, nbytes),
                nbytes,
            )

        engine.process(core_side(), name=f"recover.xcore[{src_endpoint}]")
        engine.process(a9_side(), name=f"recover.xlink[{src_endpoint}]")
